"""Tests for [C]-components and [C]-paths (Section 2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import (
    Hypergraph,
    component_of,
    components,
    connected_components,
    is_connected,
    separator_path,
)
from repro.hypergraph.generators import cycle, grid

from .strategies import hypergraphs


class TestComponents:
    def test_cycle_minus_one_vertex_is_connected(self):
        c = cycle(6)
        comps = components(c, ["v1"])
        assert len(comps) == 1
        assert comps[0] == frozenset({f"v{i}" for i in range(2, 7)})

    def test_cycle_minus_two_opposite_vertices_splits(self):
        c = cycle(6)
        comps = components(c, ["v1", "v4"])
        assert sorted(sorted(comp) for comp in comps) == [
            ["v2", "v3"],
            ["v5", "v6"],
        ]

    def test_empty_separator_gives_connected_components(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["c", "d"]})
        assert len(connected_components(h)) == 2
        assert not is_connected(h)

    def test_hyperedge_connects_all_its_vertices(self):
        h = Hypergraph({"big": ["a", "b", "c", "d"]})
        assert len(components(h, [])) == 1

    def test_separator_inside_edge_blocks(self):
        # a-b-c in one edge; removing b does NOT disconnect a from c,
        # because the edge still contains both outside the separator.
        h = Hypergraph({"abc": ["a", "b", "c"]})
        assert len(components(h, ["b"])) == 1

    def test_component_of(self):
        c = cycle(6)
        comp = component_of(c, ["v1", "v4"], "v2")
        assert comp == frozenset({"v2", "v3"})

    def test_component_of_separator_vertex_rejected(self):
        c = cycle(6)
        with pytest.raises(ValueError, match="separator"):
            component_of(c, ["v1"], "v1")

    def test_all_vertices_removed(self):
        h = Hypergraph({"e": ["a", "b"]})
        assert components(h, ["a", "b"]) == []


class TestPaths:
    def test_trivial_path(self):
        h = Hypergraph({"e": ["a", "b"]})
        vertices, edges = separator_path(h, [], "a", "a")
        assert vertices == ["a"]
        assert edges == []

    def test_path_in_grid(self):
        g = grid(2, 3)
        result = separator_path(g, [], "v_0_0", "v_1_2")
        assert result is not None
        vertices, edges = result
        assert vertices[0] == "v_0_0"
        assert vertices[-1] == "v_1_2"
        assert len(edges) == len(vertices) - 1

    def test_path_blocked_by_separator(self):
        c = cycle(6)
        assert separator_path(c, ["v2", "v6"], "v1", "v4") is None

    def test_path_respects_separator_detour(self):
        c = cycle(6)
        result = separator_path(c, ["v2"], "v1", "v3")
        assert result is not None
        vertices, _edges = result
        assert "v2" not in vertices

    def test_source_in_separator(self):
        c = cycle(6)
        assert separator_path(c, ["v1"], "v1", "v3") is None


@given(hypergraphs())
@settings(max_examples=40, deadline=None)
def test_components_partition_remaining_vertices(h: Hypergraph):
    """Components are disjoint and cover V(H) \\ C exactly."""
    separator = frozenset(list(sorted(h.vertices, key=str))[::2])
    comps = components(h, separator)
    union: set = set()
    for comp in comps:
        assert comp, "components are non-empty"
        assert not comp & separator
        assert not comp & union, "components are disjoint"
        union |= comp
    assert union == h.vertices - separator


@given(hypergraphs(), st.randoms())
@settings(max_examples=30, deadline=None)
def test_paths_exist_within_components(h: Hypergraph, rng):
    """Any two vertices of a [C]-component are joined by a [C]-path whose
    edges avoid the separator at the endpoints used."""
    separator = frozenset(
        v for v in h.vertices if rng.random() < 0.3
    )
    for comp in components(h, separator):
        vs = sorted(comp, key=str)
        a, b = vs[0], vs[-1]
        result = separator_path(h, separator, a, b)
        assert result is not None
        vertices, edges = result
        assert vertices[0] == a and vertices[-1] == b
        for i, edge_name in enumerate(edges):
            reachable = h.edge(edge_name) - separator
            assert vertices[i] in reachable
            assert vertices[i + 1] in reachable
