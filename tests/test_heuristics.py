"""Heuristic width bounds: sound sandwiches around the exact values."""

import pytest
from hypothesis import given, settings

from repro.algorithms import (
    clique_lower_bound,
    fractional_hypertree_width_exact,
    generalized_hypertree_width_exact,
    heuristic_decomposition,
    min_degree_ordering,
    min_fill_ordering,
    width_bounds,
)
from repro.covers import EPS
from repro.decomposition import is_fhd, is_ghd
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import clique, cycle, grid, triangle_cascade
from repro.paper_artifacts import example_4_3_hypergraph

from .strategies import hypergraphs


class TestOrderings:
    def test_orderings_are_permutations(self):
        h = grid(3, 3)
        for order in (min_degree_ordering(h), min_fill_ordering(h)):
            assert sorted(order, key=str) == sorted(h.vertices, key=str)

    def test_min_fill_optimal_on_chordal(self):
        """On a chordal instance min-fill adds no fill and is exact."""
        h = Hypergraph(
            {"e1": ["a", "b", "c"], "e2": ["b", "c", "d"], "e3": ["c", "d", "e"]}
        )
        width, d = heuristic_decomposition(h, cost="integral", ordering="min-fill")
        assert width == 1.0
        assert is_ghd(h, d, width=1)


class TestHeuristicDecomposition:
    def test_valid_and_above_exact(self):
        for h in (cycle(7), grid(3, 3), clique(5), example_4_3_hypergraph()):
            exact, _d = fractional_hypertree_width_exact(h)
            for ordering in ("min-degree", "min-fill"):
                width, d = heuristic_decomposition(h, ordering=ordering)
                assert is_fhd(h, d, width=width + EPS)
                assert width >= exact - EPS

    def test_integral_cost(self):
        h = cycle(6)
        width, d = heuristic_decomposition(h, cost="integral")
        assert is_ghd(h, d, width=width)
        assert d.is_integral()

    def test_heuristic_on_cycles(self):
        """Exact (width 2) on small cycles; on larger ones tie-breaking
        may scatter a bag, but the bound stays sound and close."""
        for n in (5, 8):
            width, _d = heuristic_decomposition(cycle(n))
            assert width == pytest.approx(2.0)
        width, _d = heuristic_decomposition(cycle(12))
        assert 2.0 - EPS <= width <= 3.0 + EPS

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            heuristic_decomposition(cycle(4), ordering="zzz")
        with pytest.raises(ValueError):
            heuristic_decomposition(cycle(4), cost="zzz")


class TestLowerBound:
    def test_exact_on_cliques(self):
        """The whole clique is a primal clique: bound = ρ* = n/2."""
        assert clique_lower_bound(clique(6)) == pytest.approx(3.0)
        assert clique_lower_bound(clique(5)) == pytest.approx(2.5)

    def test_integral_variant(self):
        assert clique_lower_bound(clique(5), cost="integral") == 3.0

    def test_sound_on_suite(self):
        for h in (cycle(7), grid(3, 3), example_4_3_hypergraph()):
            exact, _d = fractional_hypertree_width_exact(h)
            assert clique_lower_bound(h) <= exact + EPS

    def test_bad_cost(self):
        with pytest.raises(ValueError):
            clique_lower_bound(cycle(4), cost="zzz")


class TestWidthBounds:
    def test_sandwich_contains_exact(self):
        for h in (cycle(6), grid(3, 3), clique(5), triangle_cascade(3)):
            lower, upper, witness = width_bounds(h)
            exact, _d = fractional_hypertree_width_exact(h)
            assert lower - EPS <= exact <= upper + EPS
            assert is_fhd(h, witness, width=upper + EPS)

    def test_integral_sandwich(self):
        h = example_4_3_hypergraph()
        lower, upper, witness = width_bounds(h, cost="integral")
        exact, _d = generalized_hypertree_width_exact(h)
        assert lower - EPS <= exact <= upper + EPS

    def test_scales_past_exact_dp_limit(self):
        """25 vertices is beyond the 2^n oracle; heuristics still work."""
        h = grid(5, 5)
        lower, upper, witness = width_bounds(h)
        assert 1.0 <= lower <= upper
        assert is_fhd(h, witness, width=upper + EPS)


@given(hypergraphs(max_vertices=7, max_edges=6))
@settings(max_examples=20, deadline=None)
def test_sandwich_property(h: Hypergraph):
    """lower <= exact fhw <= heuristic upper, on random hypergraphs."""
    lower, upper, _witness = width_bounds(h)
    exact, _d = fractional_hypertree_width_exact(h)
    assert lower <= exact + EPS
    assert exact <= upper + EPS
