"""Tests for the remote executor stack (``repro.dist``).

Covers the RPW1 wire protocol, registry/executor scheduling against
loopback workers (in-process for speed, real subprocesses where the
boundary matters), fault injection (killed workers requeue, zero
requests lost), cancellation propagation across the wire, idle
auto-shutdown, and the zero-worker local-fallback degradation.
"""

from __future__ import annotations

import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
import zlib
from concurrent.futures import wait as cf_wait

import pytest

from repro.dist import (
    RemoteExecutor,
    WorkerClient,
    WorkerRegistry,
    close_registry,
    set_registry,
    spawn_worker,
)
from repro.dist.protocol import (
    MAGIC,
    MAX_FRAME_BYTES,
    ProtocolError,
    parse_endpoint,
    recv_message,
    send_message,
)
from repro.hypergraph.generators import clique, cycle, grid
from repro.pipeline import EXECUTORS, last_batch_stats, solve_many
from repro.pipeline.solve import BlockScheduler, run_block_task


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def _pair(self):
        a, b = socket.socketpair()
        return a, b

    def test_round_trip(self):
        a, b = self._pair()
        try:
            message = {"type": "task", "task": "t1", "params": {"k": 2}}
            send_message(a, message)
            assert recv_message(b) == message
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = self._pair()
        a.close()
        try:
            assert recv_message(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = self._pair()
        try:
            payload = pickle.dumps({"type": "ping"})
            frame = struct.pack(
                ">4sII", MAGIC, len(payload), zlib.crc32(payload)
            )
            a.sendall(frame + payload[:-2])  # cut mid-payload
            a.close()
            with pytest.raises(ProtocolError):
                recv_message(b)
        finally:
            b.close()

    def test_bad_magic_raises(self):
        a, b = self._pair()
        try:
            payload = pickle.dumps({"type": "ping"})
            a.sendall(
                struct.pack(">4sII", b"XXXX", len(payload), zlib.crc32(payload))
                + payload
            )
            with pytest.raises(ProtocolError, match="magic"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_corrupt_crc_raises(self):
        a, b = self._pair()
        try:
            payload = pickle.dumps({"type": "ping"})
            a.sendall(
                struct.pack(
                    ">4sII", MAGIC, len(payload), zlib.crc32(payload) ^ 0xFF
                )
                + payload
            )
            with pytest.raises(ProtocolError, match="CRC"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_oversize_frame_rejected_before_send(self):
        a, b = self._pair()
        try:
            with pytest.raises(ProtocolError, match="exceeds the"):
                send_message(a, {"blob": b"x" * (MAX_FRAME_BYTES + 1)})
        finally:
            a.close()
            b.close()

    def test_oversize_header_rejected_on_recv(self):
        a, b = self._pair()
        try:
            a.sendall(struct.pack(">4sII", MAGIC, MAX_FRAME_BYTES + 1, 0))
            with pytest.raises(ProtocolError, match="exceeds the"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_parse_endpoint(self):
        assert parse_endpoint("127.0.0.1:9876") == ("127.0.0.1", 9876)
        assert parse_endpoint("host.example:1") == ("host.example", 1)
        for bad in ("no-port", "host:", ":", "host:abc", ""):
            with pytest.raises(ValueError):
                parse_endpoint(bad)


# ----------------------------------------------------------------------
# In-process fleets (fast: WorkerClient threads against a registry)
# ----------------------------------------------------------------------
def _thread_worker(registry, jobs=2, runner=None, idle_timeout=None):
    """Run a WorkerClient against ``registry`` in a daemon thread."""
    client = WorkerClient(
        registry.host,
        registry.port,
        jobs=jobs,
        idle_timeout=idle_timeout,
        heartbeat_interval=0.3,
        runner=runner,
    )
    thread = threading.Thread(target=client.run, daemon=True)
    thread.start()
    return client, thread


@pytest.fixture
def fleet():
    """A registry with two in-process workers, installed as ambient."""
    registry = WorkerRegistry(ping_interval=0.5, worker_timeout=5.0)
    previous = set_registry(registry)
    threads = [_thread_worker(registry, jobs=2)[1] for _ in range(2)]
    assert registry.wait_for_workers(2, timeout=10.0)
    yield registry
    close_registry()
    set_registry(previous)
    for thread in threads:
        thread.join(timeout=5.0)


@pytest.fixture
def empty_registry():
    """A registry with no workers at all, installed as ambient."""
    registry = WorkerRegistry(ping_interval=0.5)
    previous = set_registry(registry)
    yield registry
    close_registry()
    set_registry(previous)


REQUESTS = [(clique(4), "ghw"), (cycle(6), "hw"), (grid(3, 3), "ghw")]


class TestRemoteSolve:
    def test_matches_thread_executor(self, fleet):
        baseline = solve_many(REQUESTS, jobs=4, executor="thread")
        remote = solve_many(REQUESTS, jobs=4, executor="remote")
        assert all(r.ok for r in remote)
        assert [r.value[0] for r in remote] == [r.value[0] for r in baseline]
        stats = last_batch_stats()
        assert stats.tasks_remote > 0
        # remote_workers counts workers that actually ran something; a
        # small batch may fit on one of the fleet's two.
        assert 1 <= stats.remote_workers <= 2
        assert fleet.worker_count() == 2
        assert stats.requeued_tasks == 0
        assert stats.tasks_local_fallback == 0

    def test_zero_workers_degrades_to_local(self, empty_registry):
        results = solve_many(REQUESTS, jobs=2, executor="remote")
        assert [r.value[0] for r in results] == [2, 2, 2]
        stats = last_batch_stats()
        assert stats.tasks_remote == 0
        assert stats.tasks_local_fallback > 0
        assert stats.remote_workers == 0

    def test_portfolio_racing_cancels_remotely(self, fleet):
        # Portfolio mode races bb against its SAT twin per task; the
        # loser is cancelled exactly once per settled race.  Remotely
        # the cancel crosses the wire (dequeue or cooperative abort) —
        # the counters must match the in-process contract.
        baseline = solve_many(
            REQUESTS, jobs=4, solver="portfolio", executor="thread"
        )
        remote = solve_many(
            REQUESTS, jobs=4, solver="portfolio", executor="remote"
        )
        stats = last_batch_stats()
        assert [r.value[0] for r in remote] == [r.value[0] for r in baseline]
        # Every settled race cancels its losing twin exactly once — the
        # once-per-race floor holds across the wire.  (Speculative-task
        # cancellations on top of that are timing-dependent, so no
        # exact equality with the thread run.)
        assert stats.tasks_cancelled >= 1
        assert stats.tasks_remote > 0

    def test_iterative_width_search_on_remote_pool(self, fleet):
        scheduler = BlockScheduler(jobs=2, executor="remote")
        (result,) = solve_many([(cycle(5), "ghw")], jobs=2, executor="remote")
        assert result.value[0] == 2
        assert scheduler.executor == "remote"


class TestRemoteExecutorUnit:
    def test_cancelled_dispatched_future_wakes_wait(self):
        # Regression: Future.cancel() parks a future in CANCELLED, but
        # concurrent.futures.wait() only counts CANCELLED_AND_NOTIFIED
        # as done — in a pool the worker thread promotes it.  The
        # remote executor must promote cancelled futures itself or the
        # batch drive loop waits forever on a cancelled twin.
        registry = WorkerRegistry(ping_interval=0.5)
        release = threading.Event()

        def stuck_runner(solver, hypergraph, params):
            release.wait(30.0)
            return run_block_task(solver, hypergraph, params)

        _client, thread = _thread_worker(registry, jobs=1, runner=stuck_runner)
        assert registry.wait_for_workers(1, timeout=10.0)
        executor = RemoteExecutor(registry, jobs=1)
        try:
            future = executor.submit(
                run_block_task, "bb-check-ghd", cycle(4), {"k": 2}
            )
            deadline = time.monotonic() + 5.0
            while registry.workers()[0]["in_flight"] == 0:
                assert time.monotonic() < deadline, "task never dispatched"
                time.sleep(0.01)
            assert future.cancel()
            done, pending = cf_wait({future}, timeout=5.0)
            assert done == {future} and not pending
            assert future.cancelled()
        finally:
            release.set()
            executor.shutdown(wait=False)
            registry.close()
            thread.join(timeout=5.0)

    def test_generic_submissions_run_locally(self, empty_registry):
        executor = RemoteExecutor(empty_registry, jobs=1)
        try:
            assert executor.submit(pow, 2, 10).result(timeout=5.0) == 1024
            stats = executor.remote_stats()
            assert stats["tasks_local"] == 1
            assert stats["tasks_remote"] == 0
        finally:
            executor.shutdown()

    def test_remote_error_propagates(self, empty_registry):
        registry = empty_registry

        def boom(solver, hypergraph, params):
            raise ValueError("remote boom")

        _client, thread = _thread_worker(registry, jobs=1, runner=boom)
        assert registry.wait_for_workers(1, timeout=10.0)
        executor = RemoteExecutor(registry, jobs=1)
        try:
            future = executor.submit(
                run_block_task, "bb-check-ghd", cycle(4), {"k": 2}
            )
            with pytest.raises(ValueError, match="remote boom"):
                future.result(timeout=10.0)
        finally:
            executor.shutdown(wait=False)
            registry.close()
            thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# Fault injection: real subprocess workers
# ----------------------------------------------------------------------
SLOW_WORKER = """
import time
from repro.dist import WorkerClient
from repro.pipeline.solve import run_block_task

def slow(solver, hypergraph, params):
    time.sleep(60.0)
    return run_block_task(solver, hypergraph, params)

raise SystemExit(
    WorkerClient(HOST, PORT, jobs=JOBS, idle_timeout=IDLE,
                 heartbeat_interval=0.3, runner=slow).run()
)
"""


class TestWorkerFaults:
    def test_killed_worker_requeues_and_loses_nothing(self):
        registry = WorkerRegistry(ping_interval=0.3, worker_timeout=4.0)
        previous = set_registry(registry)
        stuck = spawn_worker(registry.address, jobs=2, bootstrap=SLOW_WORKER)
        normal = spawn_worker(registry.address, jobs=2, idle_timeout=60)
        try:
            assert registry.wait_for_workers(2, timeout=20.0)
            stuck_pid = stuck.pid
            holder = {}

            def solve():
                holder["results"] = solve_many(
                    REQUESTS, jobs=4, executor="remote"
                )
                holder["stats"] = last_batch_stats()

            driver = threading.Thread(target=solve, daemon=True)
            driver.start()
            # Wait until the stuck worker holds at least one task, then
            # kill it: the registry must requeue onto the survivor.
            deadline = time.monotonic() + 20.0
            while True:
                hung = [
                    w
                    for w in registry.workers()
                    if w["pid"] == stuck_pid and w["in_flight"] > 0
                ]
                if hung:
                    break
                assert time.monotonic() < deadline, (
                    "stuck worker never received a task"
                )
                time.sleep(0.02)
            stuck.kill()
            driver.join(timeout=60.0)
            assert not driver.is_alive(), "batch hung after worker death"
            results = holder["results"]
            assert all(r.ok for r in results), [r.error for r in results]
            assert [r.value[0] for r in results] == [2, 2, 2]
            assert holder["stats"].requeued_tasks > 0
        finally:
            close_registry()
            set_registry(previous)
            for proc in (stuck, normal):
                proc.kill()
                proc.wait(timeout=10.0)

    def test_idle_worker_shuts_itself_down(self):
        registry = WorkerRegistry(ping_interval=0.3, worker_timeout=6.0)
        bootstrap = (
            "from repro.dist import WorkerClient\n"
            "raise SystemExit(WorkerClient(HOST, PORT, jobs=JOBS,"
            " idle_timeout=1.0, heartbeat_interval=0.2).run())\n"
        )
        proc = spawn_worker(registry.address, jobs=1, bootstrap=bootstrap)
        try:
            assert registry.wait_for_workers(1, timeout=20.0)
            # Never send work: the worker must say bye and exit 0 on
            # its own once idle_timeout elapses.
            assert proc.wait(timeout=30.0) == 0
            deadline = time.monotonic() + 10.0
            while registry.worker_count() > 0:
                assert time.monotonic() < deadline
                time.sleep(0.05)
        finally:
            proc.kill()
            registry.close()

    def test_worker_redials_until_the_registry_appears(self):
        """A worker that races its driver retries instead of dying."""
        # Reserve a port, then leave it unbound while the worker dials.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()[:2]
        probe.close()
        client = WorkerClient(
            host, port, jobs=1, idle_timeout=None,
            heartbeat_interval=0.3, connect_timeout=15.0,
        )
        thread = threading.Thread(target=client.run, daemon=True)
        thread.start()
        time.sleep(0.7)  # a few refused dials happen in this window
        registry = WorkerRegistry(host=host, port=port, ping_interval=0.5)
        try:
            assert registry.wait_for_workers(1, timeout=15.0)
        finally:
            registry.close()
            thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# Satellite: pickle round-trips across a real subprocess boundary
# ----------------------------------------------------------------------
ECHO_CHILD = """
import pickle, sys
blob = sys.stdin.buffer.read()
objects = pickle.loads(blob)
h, d = objects
# Touch derived/cached state on the far side so the round-trip result
# carries a populated cache back across the boundary.
h.primal_graph()
canonical = h.canonical_hash()
width = d.width()
sys.stdout.buffer.write(pickle.dumps((h, d, canonical, width)))
"""


class TestPickleBoundary:
    def test_hypergraph_and_decomposition_round_trip(self):
        from repro.pipeline import solve_width

        h = grid(3, 3)
        # Populate every lazy cache before pickling: none of it may
        # leak into the payload or corrupt the copy.
        h.primal_graph()
        hash(h)
        local_canonical = h.canonical_hash()
        width, decomposition = solve_width(h, kind="ghw")

        import os

        src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env = dict(os.environ)
        path = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not path else src_dir + os.pathsep + path
        )
        proc = subprocess.run(
            [sys.executable, "-c", ECHO_CHILD],
            input=pickle.dumps((h, decomposition)),
            capture_output=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr.decode()
        h2, d2, remote_canonical, remote_width = pickle.loads(proc.stdout)

        assert h2 == h
        assert h2.edges == h.edges
        assert remote_canonical == local_canonical
        assert h2.canonical_hash() == local_canonical
        assert remote_width == decomposition.width() == width
        assert d2.width() == decomposition.width()
        assert d2.node_ids == decomposition.node_ids
        # The copy is fully functional, not a shell: it validates
        # against the re-hydrated hypergraph.
        from repro.decomposition.validation import is_ghd

        assert is_ghd(h2, d2)


# ----------------------------------------------------------------------
# Satellite: executor validation is derived from EXECUTORS everywhere
# ----------------------------------------------------------------------
class TestExecutorValidation:
    def test_executors_tuple(self):
        assert EXECUTORS == ("thread", "process", "remote")

    def test_solve_many_message_lists_all_executors(self):
        with pytest.raises(ValueError) as err:
            solve_many([], executor="zzz")
        for name in EXECUTORS:
            assert name in str(err.value)

    def test_block_scheduler_message_lists_all_executors(self):
        with pytest.raises(ValueError) as err:
            BlockScheduler(jobs=2, executor="zzz")
        for name in EXECUTORS:
            assert name in str(err.value)

    def test_make_pool_message_lists_all_executors(self):
        from repro.pipeline.solve import make_pool

        with pytest.raises(ValueError) as err:
            make_pool("zzz", 1)
        for name in EXECUTORS:
            assert name in str(err.value)
