"""CLI integration tests (direct main() invocation, no subprocesses)."""

import json

import pytest

from repro.cli import main
from repro.hardness import CNF, paper_example_formula
from repro.hypergraph import to_hyperbench
from repro.hypergraph.generators import cycle, triangle_cascade


@pytest.fixture
def c6_file(tmp_path):
    path = tmp_path / "c6.hg"
    path.write_text(to_hyperbench(cycle(6)))
    return str(path)


@pytest.fixture
def cnf_file(tmp_path):
    path = tmp_path / "phi.cnf"
    path.write_text(paper_example_formula().to_dimacs())
    return str(path)


class TestStats:
    def test_text_output(self, c6_file, capsys):
        assert main(["stats", c6_file]) == 0
        out = capsys.readouterr().out
        assert "vertices: 6" in out
        assert "alpha_acyclic: False" in out

    def test_json_output(self, c6_file, capsys):
        assert main(["stats", c6_file, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["edges"] == 6
        assert data["iwidth"] == 1
        assert data["vc_dimension"] == 2


class TestWidth:
    @pytest.mark.parametrize(
        "kind,expected", [("hw", "2"), ("ghw", "2"), ("fhw", "2.0")]
    )
    def test_widths_of_c6(self, c6_file, capsys, kind, expected):
        assert main(["width", c6_file, "--kind", kind]) == 0
        assert f"= {expected}" in capsys.readouterr().out

    def test_show_witness(self, c6_file, capsys):
        assert main(["width", c6_file, "--kind", "ghw", "--show"]) == 0
        out = capsys.readouterr().out
        assert "{" in out  # bags printed


class TestDecompose:
    def test_success(self, c6_file, capsys):
        assert main(["decompose", c6_file, "-k", "2"]) == 0
        assert "width 2" in capsys.readouterr().out

    def test_failure_exit_code(self, c6_file, capsys):
        assert main(["decompose", c6_file, "-k", "1"]) == 1
        assert "no GHD" in capsys.readouterr().err

    def test_json_payload(self, c6_file, capsys):
        assert main(["decompose", c6_file, "-k", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "nodes" in data and "root" in data


class TestBounds:
    def test_fractional_bounds(self, c6_file, capsys):
        assert main(["bounds", c6_file]) == 0
        out = capsys.readouterr().out
        assert "<= fhw(" in out


class TestReduce:
    def test_report(self, cnf_file, capsys):
        assert main(["reduce", cnf_file]) == 0
        out = capsys.readouterr().out
        assert "satisfiable: True" in out
        assert "validated, 25 nodes" in out

    def test_certify(self, cnf_file, capsys):
        assert main(["reduce", cnf_file, "--certify"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 3.5 certificate: True" in out
        assert "LP equivalence: True" in out

    def test_unsat_report(self, tmp_path, capsys):
        path = tmp_path / "unsat.cnf"
        path.write_text(CNF(((1, 1, 1), (-1, -1, -1))).to_dimacs())
        assert main(["reduce", str(path)]) == 0
        out = capsys.readouterr().out
        assert "satisfiable: False" in out
        assert "none (unsat)" in out


class TestGenerate:
    def test_roundtrip_through_stats(self, tmp_path, capsys):
        assert main(["generate", "grid", "3"]) == 0
        text = capsys.readouterr().out
        path = tmp_path / "g.hg"
        path.write_text(text)
        assert main(["stats", str(path)]) == 0
        assert "vertices: 9" in capsys.readouterr().out

    def test_unknown_family(self, capsys):
        assert main(["generate", "zzz", "3"]) == 1
        assert "unknown family" in capsys.readouterr().err


class TestEngineOptions:
    def test_cache_stats_printed_without_resetting_globals(self, c6_file, capsys):
        from repro import engine

        before = engine.stats()
        assert main(["width", c6_file, "--kind", "fhw", "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "engine cache stats:" in out
        assert "lp_solves" in out
        assert "hit_rate" in out
        # The printed numbers are a per-invocation delta; the process
        # globals keep accumulating for in-process callers.
        after = engine.stats()
        assert after["lp_solves"] >= before["lp_solves"]
        assert after["cache_misses"] >= before["cache_misses"]

    def test_backend_selection_does_not_leak_config(self, c6_file, capsys):
        from repro import engine

        before = engine.engine_config().backend
        assert main(
            ["width", c6_file, "--kind", "fhw", "--backend", "purepython"]
        ) == 0
        assert "= 2.0" in capsys.readouterr().out
        assert engine.engine_config().backend == before

    def test_cache_disabled_still_correct(self, c6_file, capsys):
        from repro import engine

        previous = engine.engine_config().cache_size
        assert main(
            ["width", c6_file, "--kind", "fhw", "--cache-size", "0",
             "--cache-stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "= 2.0" in out
        assert "cache_hits: 0" in out
        assert engine.engine_config().cache_size == previous


class TestReport:
    def test_text_report(self, c6_file, capsys):
        assert main(["report", c6_file]) == 0
        out = capsys.readouterr().out
        assert "(exact)" in out and "hw=2" in out

    def test_json_report(self, c6_file, capsys):
        assert main(["report", c6_file, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ghw_lower"] == data["ghw_upper"] == 2.0

    def test_integral_bounds(self, c6_file, capsys):
        assert main(["bounds", c6_file, "--cost", "integral"]) == 0
        assert "<= ghw(" in capsys.readouterr().out


class TestBatch:
    @pytest.fixture
    def manifest_file(self, tmp_path):
        from repro.hypergraph.generators import clique, triangle_cascade

        (tmp_path / "c6.hg").write_text(to_hyperbench(cycle(6)))
        (tmp_path / "t3.hg").write_text(to_hyperbench(triangle_cascade(3)))
        (tmp_path / "k5.hg").write_text(to_hyperbench(clique(5)))
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps({
            "requests": [
                {"file": "c6.hg", "kind": "ghw"},
                {"file": "t3.hg", "kind": "hw"},
                {"file": "k5.hg", "kind": "fhw"},
                {"file": "c6.hg", "kind": "check-ghd", "params": {"k": 1},
                 "label": "c6@1"},
                {"file": "t3.hg", "kind": "bounds"},
            ]
        }))
        return str(manifest)

    def test_text_output(self, manifest_file, capsys):
        assert main(["batch", manifest_file, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "ghw(c6) = 2" in out
        assert "hw(t3) = 2" in out
        assert "fhw(k5) = 2.5" in out
        assert "check-ghd(c6@1, k=1) = no" in out
        assert "<= fhw(t3) <=" in out
        assert "5 requests, 5 ok, 0 failed" in out

    def test_json_output(self, manifest_file, capsys):
        assert main(["batch", manifest_file, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["results"]) == 5
        assert data["results"][0] == {
            "label": "c6", "kind": "ghw", "ok": True, "width": 2,
        }
        assert data["results"][3]["accepted"] is False
        assert data["stats"]["requests"] == 5
        assert data["stats"]["failures"] == 0

    def test_bare_list_manifest_and_stats(self, tmp_path, capsys):
        (tmp_path / "c4.hg").write_text(to_hyperbench(cycle(4)))
        manifest = tmp_path / "list.json"
        manifest.write_text(json.dumps(["c4.hg", {"file": "c4.hg", "kind": "fhw"}]))
        assert main(["batch", str(manifest), "--pipeline-stats"]) == 0
        out = capsys.readouterr().out
        assert "ghw(c4) = 2" in out  # bare string entry defaults to ghw
        assert "batch stats:" in out
        assert "tasks_run" in out

    def test_failing_request_reported_and_exit_1(self, tmp_path, capsys):
        (tmp_path / "c4.hg").write_text(to_hyperbench(cycle(4)))
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps([
            {"file": "c4.hg", "kind": "zzz"},
            {"file": "c4.hg", "kind": "ghw"},
        ]))
        assert main(["batch", str(manifest)]) == 1
        out = capsys.readouterr().out
        assert "ERROR" in out
        assert "ghw(c4) = 2" in out  # sibling still answered
        assert "1 failed" in out

    def test_bad_manifest_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["batch", str(missing)]) == 2
        assert "cannot read manifest" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["batch", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err
        noreq = tmp_path / "noreq.json"
        noreq.write_text(json.dumps({"files": []}))
        assert main(["batch", str(noreq)]) == 2
        assert "requests" in capsys.readouterr().err
        nofile = tmp_path / "nofile.json"
        nofile.write_text(json.dumps([{"kind": "ghw"}]))
        assert main(["batch", str(nofile)]) == 2
        assert "entry 0" in capsys.readouterr().err
        gone = tmp_path / "gone.json"
        gone.write_text(json.dumps([{"file": "missing.hg"}]))
        assert main(["batch", str(gone)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_structurally_bad_entry_values_exit_2(self, tmp_path, capsys):
        (tmp_path / "c4.hg").write_text(to_hyperbench(cycle(4)))
        intfile = tmp_path / "intfile.json"
        intfile.write_text(json.dumps([{"file": 123}]))
        assert main(["batch", str(intfile)]) == 2
        assert '"file" string' in capsys.readouterr().err
        badparams = tmp_path / "badparams.json"
        badparams.write_text(json.dumps([{"file": "c4.hg", "params": "zz"}]))
        assert main(["batch", str(badparams)]) == 2
        assert "entry 0 is invalid" in capsys.readouterr().err
        # params: null is tolerated (treated as no params)
        nullparams = tmp_path / "nullparams.json"
        nullparams.write_text(json.dumps([{"file": "c4.hg", "params": None}]))
        assert main(["batch", str(nullparams)]) == 0
        assert "ghw(c4) = 2" in capsys.readouterr().out

    def test_unknown_solver_exits_2(self, tmp_path, capsys):
        """An unknown engine mode is a configuration error: exit 2
        with a clean message, nothing solved."""
        (tmp_path / "c4.hg").write_text(to_hyperbench(cycle(4)))
        badsolver = tmp_path / "badsolver.json"
        badsolver.write_text(
            json.dumps([{"file": "c4.hg", "solver": "cplex"}])
        )
        assert main(["batch", str(badsolver)]) == 2
        err = capsys.readouterr().err
        assert "entry 0 has unknown solver 'cplex'" in err
        assert "bb, sat, portfolio" in err
        # The batch-wide flag is argparse-validated: same exit code.
        good = tmp_path / "good.json"
        good.write_text(json.dumps([{"file": "c4.hg"}]))
        with pytest.raises(SystemExit) as excinfo:
            main(["batch", str(good), "--solver", "cplex"])
        assert excinfo.value.code == 2

    def test_unknown_executor_key_exits_2(self, tmp_path, capsys):
        """An unknown per-entry "executor" is a configuration error:
        exit 2 with a clean message, nothing solved — the same contract
        as an unknown per-entry "solver"."""
        (tmp_path / "c4.hg").write_text(to_hyperbench(cycle(4)))
        badexec = tmp_path / "badexec.json"
        badexec.write_text(
            json.dumps([{"file": "c4.hg", "executor": "mpi"}])
        )
        assert main(["batch", str(badexec)]) == 2
        err = capsys.readouterr().err
        assert "entry 0 has unknown executor 'mpi'" in err
        assert "thread, process, remote" in err
        # A known value passes validation (the pool is batch-wide, so
        # the key is otherwise ignored).
        okexec = tmp_path / "okexec.json"
        okexec.write_text(
            json.dumps([{"file": "c4.hg", "executor": "thread"}])
        )
        assert main(["batch", str(okexec)]) == 0
        assert "ghw(c4) = 2" in capsys.readouterr().out
        # The batch-wide flag is argparse-validated: same exit code.
        good = tmp_path / "good.json"
        good.write_text(json.dumps([{"file": "c4.hg"}]))
        with pytest.raises(SystemExit) as excinfo:
            main(["batch", str(good), "--executor", "mpi"])
        assert excinfo.value.code == 2

    def test_worker_bad_endpoint_exits_2(self, capsys):
        assert main(["worker", "--connect", "no-port-here"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_per_entry_solver_modes(self, tmp_path, capsys):
        """Entries may pick their own engine; answers match bb."""
        (tmp_path / "c6.hg").write_text(to_hyperbench(cycle(6)))
        manifest = tmp_path / "modes.json"
        manifest.write_text(json.dumps([
            {"file": "c6.hg", "kind": "ghw", "solver": "sat",
             "label": "via-sat"},
            {"file": "c6.hg", "kind": "ghw", "solver": "portfolio",
             "label": "via-race"},
            {"file": "c6.hg", "kind": "ghw", "label": "via-bb"},
        ]))
        assert main(["batch", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "ghw(via-sat) = 2" in out
        assert "ghw(via-race) = 2" in out
        assert "ghw(via-bb) = 2" in out

    def test_width_command_solver_flag(self, tmp_path, capsys):
        (tmp_path / "t3.hg").write_text(to_hyperbench(triangle_cascade(3)))
        for mode in ("bb", "sat", "portfolio"):
            assert main(
                ["width", str(tmp_path / "t3.hg"), "--kind", "hw",
                 "--solver", mode]
            ) == 0
            assert "hw(t3) = 2" in capsys.readouterr().out


class TestQueryCommand:
    _DB = {
        "relations": {
            "r": {
                "attributes": ["a", "b"],
                "rows": [[1, 2], [2, 3], [3, 4]],
            }
        }
    }
    _CHAIN = "q(x, z) :- r(x, y), r(y, z)."

    @pytest.fixture
    def db_file(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text(json.dumps(self._DB))
        return str(path)

    def test_single_query_text_output(self, db_file, capsys):
        assert main(["query", self._CHAIN, "--data", db_file]) == 0
        out = capsys.readouterr().out
        assert "query(q): 2 answers (width 1, plan computed)" in out
        assert "1, 3" in out and "2, 4" in out

    def test_single_query_json_output(self, db_file, capsys):
        assert main(["query", self._CHAIN, "--data", db_file, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        (result,) = data["results"]
        assert result["ok"] and result["width"] == 1
        assert result["answers"]["rows"] == [[1, 3], [2, 4]]
        assert result["plan_from_store"] is False

    def test_query_from_file(self, db_file, tmp_path, capsys):
        qfile = tmp_path / "q.cq"
        qfile.write_text(self._CHAIN)
        assert main(["query", str(qfile), "--data", db_file]) == 0
        assert "2 answers" in capsys.readouterr().out

    def test_boolean_query(self, db_file, capsys):
        assert main(["query", ":- r(x, y).", "--data", db_file]) == 0
        assert "= true (boolean" in capsys.readouterr().out

    def test_store_makes_repeat_plan_warm(self, db_file, tmp_path, capsys):
        store = str(tmp_path / "cache")
        assert main(
            ["query", self._CHAIN, "--data", db_file, "--store", store]
        ) == 0
        assert "plan computed" in capsys.readouterr().out
        assert main(
            ["query", self._CHAIN, "--data", db_file, "--store", store]
        ) == 0
        assert "plan from store" in capsys.readouterr().out

    def test_malformed_query_exits_2_without_traceback(self, db_file, capsys):
        assert main(["query", "q(x) :- r(x", "--data", db_file]) == 2
        err = capsys.readouterr().err
        assert "cannot parse" in err
        assert "Traceback" not in err

    def test_missing_data_flag_exits_2(self, capsys):
        assert main(["query", self._CHAIN]) == 2
        assert "required" in capsys.readouterr().err

    def test_both_modes_exits_2(self, db_file, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps([]))
        assert main(
            ["query", self._CHAIN, "--data", db_file,
             "--manifest", str(manifest)]
        ) == 2
        assert "not both" in capsys.readouterr().err

    def test_bad_data_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"relations": {"r": {"attributes": 3}}}))
        assert main(["query", self._CHAIN, "--data", str(bad)]) == 2
        assert "attributes" in capsys.readouterr().err

    def test_failing_query_exits_1(self, db_file, capsys):
        assert main(["query", "q(x) :- miss(x).", "--data", db_file]) == 1
        out = capsys.readouterr().out
        assert "ERROR" in out and "unknown relation" in out

    def test_manifest_workload(self, db_file, tmp_path, capsys):
        manifest = tmp_path / "workload.json"
        manifest.write_text(json.dumps({
            "queries": [
                {"query": self._CHAIN, "data": "db.json", "label": "hop2"},
                {"query": ":- r(x, y).", "data": "db.json", "label": "any"},
            ]
        }))
        assert main(["query", "--manifest", str(manifest), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [r["label"] for r in data["results"]] == ["hop2", "any"]
        assert all(r["ok"] for r in data["results"])

    def test_manifest_unknown_key_exits_2_naming_fields(
        self, db_file, tmp_path, capsys
    ):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps([
            {"query": self._CHAIN, "data": "db.json", "qery": "typo"}
        ]))
        assert main(["query", "--manifest", str(manifest)]) == 2
        err = capsys.readouterr().err
        assert "entry 0 has unknown key 'qery'" in err
        assert "valid fields: data, file, label, query, solver" in err

    def test_manifest_needs_exactly_one_of_query_or_file(
        self, db_file, tmp_path, capsys
    ):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps([{"data": "db.json"}]))
        assert main(["query", "--manifest", str(manifest)]) == 2
        assert 'exactly one of "query"' in capsys.readouterr().err
        both = tmp_path / "both.json"
        both.write_text(json.dumps([
            {"query": self._CHAIN, "file": "q.cq", "data": "db.json"}
        ]))
        assert main(["query", "--manifest", str(both)]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_manifest_unknown_solver_exits_2(self, db_file, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps([
            {"query": self._CHAIN, "data": "db.json", "solver": "cplex"}
        ]))
        assert main(["query", "--manifest", str(manifest)]) == 2
        err = capsys.readouterr().err
        assert "unknown solver 'cplex'" in err
        assert "bb, sat, portfolio" in err


