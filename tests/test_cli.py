"""CLI integration tests (direct main() invocation, no subprocesses)."""

import json

import pytest

from repro.cli import main
from repro.hardness import CNF, paper_example_formula
from repro.hypergraph import to_hyperbench
from repro.hypergraph.generators import cycle


@pytest.fixture
def c6_file(tmp_path):
    path = tmp_path / "c6.hg"
    path.write_text(to_hyperbench(cycle(6)))
    return str(path)


@pytest.fixture
def cnf_file(tmp_path):
    path = tmp_path / "phi.cnf"
    path.write_text(paper_example_formula().to_dimacs())
    return str(path)


class TestStats:
    def test_text_output(self, c6_file, capsys):
        assert main(["stats", c6_file]) == 0
        out = capsys.readouterr().out
        assert "vertices: 6" in out
        assert "alpha_acyclic: False" in out

    def test_json_output(self, c6_file, capsys):
        assert main(["stats", c6_file, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["edges"] == 6
        assert data["iwidth"] == 1
        assert data["vc_dimension"] == 2


class TestWidth:
    @pytest.mark.parametrize(
        "kind,expected", [("hw", "2"), ("ghw", "2"), ("fhw", "2.0")]
    )
    def test_widths_of_c6(self, c6_file, capsys, kind, expected):
        assert main(["width", c6_file, "--kind", kind]) == 0
        assert f"= {expected}" in capsys.readouterr().out

    def test_show_witness(self, c6_file, capsys):
        assert main(["width", c6_file, "--kind", "ghw", "--show"]) == 0
        out = capsys.readouterr().out
        assert "{" in out  # bags printed


class TestDecompose:
    def test_success(self, c6_file, capsys):
        assert main(["decompose", c6_file, "-k", "2"]) == 0
        assert "width 2" in capsys.readouterr().out

    def test_failure_exit_code(self, c6_file, capsys):
        assert main(["decompose", c6_file, "-k", "1"]) == 1
        assert "no GHD" in capsys.readouterr().err

    def test_json_payload(self, c6_file, capsys):
        assert main(["decompose", c6_file, "-k", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "nodes" in data and "root" in data


class TestBounds:
    def test_fractional_bounds(self, c6_file, capsys):
        assert main(["bounds", c6_file]) == 0
        out = capsys.readouterr().out
        assert "<= fhw(" in out


class TestReduce:
    def test_report(self, cnf_file, capsys):
        assert main(["reduce", cnf_file]) == 0
        out = capsys.readouterr().out
        assert "satisfiable: True" in out
        assert "validated, 25 nodes" in out

    def test_certify(self, cnf_file, capsys):
        assert main(["reduce", cnf_file, "--certify"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 3.5 certificate: True" in out
        assert "LP equivalence: True" in out

    def test_unsat_report(self, tmp_path, capsys):
        path = tmp_path / "unsat.cnf"
        path.write_text(CNF(((1, 1, 1), (-1, -1, -1))).to_dimacs())
        assert main(["reduce", str(path)]) == 0
        out = capsys.readouterr().out
        assert "satisfiable: False" in out
        assert "none (unsat)" in out


class TestGenerate:
    def test_roundtrip_through_stats(self, tmp_path, capsys):
        assert main(["generate", "grid", "3"]) == 0
        text = capsys.readouterr().out
        path = tmp_path / "g.hg"
        path.write_text(text)
        assert main(["stats", str(path)]) == 0
        assert "vertices: 9" in capsys.readouterr().out

    def test_unknown_family(self, capsys):
        assert main(["generate", "zzz", "3"]) == 1
        assert "unknown family" in capsys.readouterr().err


class TestEngineOptions:
    def test_cache_stats_printed_without_resetting_globals(self, c6_file, capsys):
        from repro import engine

        before = engine.stats()
        assert main(["width", c6_file, "--kind", "fhw", "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "engine cache stats:" in out
        assert "lp_solves" in out
        assert "hit_rate" in out
        # The printed numbers are a per-invocation delta; the process
        # globals keep accumulating for in-process callers.
        after = engine.stats()
        assert after["lp_solves"] >= before["lp_solves"]
        assert after["cache_misses"] >= before["cache_misses"]

    def test_backend_selection_does_not_leak_config(self, c6_file, capsys):
        from repro import engine

        before = engine.engine_config().backend
        assert main(
            ["width", c6_file, "--kind", "fhw", "--backend", "purepython"]
        ) == 0
        assert "= 2.0" in capsys.readouterr().out
        assert engine.engine_config().backend == before

    def test_cache_disabled_still_correct(self, c6_file, capsys):
        from repro import engine

        previous = engine.engine_config().cache_size
        assert main(
            ["width", c6_file, "--kind", "fhw", "--cache-size", "0",
             "--cache-stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "= 2.0" in out
        assert "cache_hits: 0" in out
        assert engine.engine_config().cache_size == previous


class TestReport:
    def test_text_report(self, c6_file, capsys):
        assert main(["report", c6_file]) == 0
        out = capsys.readouterr().out
        assert "(exact)" in out and "hw=2" in out

    def test_json_report(self, c6_file, capsys):
        assert main(["report", c6_file, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ghw_lower"] == data["ghw_upper"] == 2.0

    def test_integral_bounds(self, c6_file, capsys):
        assert main(["bounds", c6_file, "--cost", "integral"]) == 0
        assert "<= ghw(" in capsys.readouterr().out
