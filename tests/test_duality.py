"""Tests for dual and reduced hypergraphs (Section 5 assumptions, §6.2)."""

import pytest
from hypothesis import given, settings

from repro.covers import (
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
)
from repro.hypergraph import (
    Hypergraph,
    degree,
    dual_hypergraph,
    is_reduced,
    rank,
    reduce_hypergraph,
)
from repro.hypergraph.generators import clique, cycle

from .strategies import hypergraphs


class TestDual:
    def test_dual_shape(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"]})
        d = dual_hypergraph(h)
        assert d.vertices == frozenset({"e1", "e2"})
        assert d.edge("d:b") == frozenset({"e1", "e2"})

    def test_dual_swaps_degree_and_rank(self):
        h = cycle(5)
        d = dual_hypergraph(h)
        assert degree(d) == rank(h)
        assert rank(d) == degree(h)

    def test_dual_involution_on_reduced(self):
        h = cycle(4)  # reduced: all edge-types distinct, no dup edges
        assert is_reduced(h)
        dd = dual_hypergraph(dual_hypergraph(h))
        # Isomorphic via the naming d:d:<v> — compare structure sizes.
        assert dd.num_vertices == h.num_vertices
        assert dd.num_edges == h.num_edges
        assert sorted(len(e) for e in dd.edges.values()) == sorted(
            len(e) for e in h.edges.values()
        )

    def test_dual_rejects_isolated(self):
        h = Hypergraph({"e": ["a"]}, vertices=["iso"])
        with pytest.raises(ValueError, match="isolated"):
            dual_hypergraph(h)

    def test_paper_section_5_example(self):
        """H0 = ({a,b,c}, {{a,b,c}}) has H^dd ≇ H (assumption (3) fails).

        The paper works with edge *sets*, so H0^d is a single vertex with
        a single loop edge; our named-edge dual keeps the three duplicate
        loops, which the reduction collapses to the paper's form.
        """
        h = Hypergraph({"e": ["a", "b", "c"]})
        assert not is_reduced(h)
        d = dual_hypergraph(h)
        assert d.num_vertices == 1
        assert d.num_edges == 3  # duplicates: {e} three times
        collapsed, _v, _e = reduce_hypergraph(d)
        assert collapsed.num_edges == 1  # the paper's H0^d
        dd = dual_hypergraph(collapsed)
        assert dd.num_vertices == 1 and dd.num_edges == 1  # ≇ H0


class TestReduce:
    def test_fuses_same_type_vertices(self):
        h = Hypergraph({"e": ["a", "b", "c"]})
        reduced, vmap, _emap = reduce_hypergraph(h)
        assert reduced.num_vertices == 1
        assert len(set(vmap.values())) == 1

    def test_collapses_duplicate_edges(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "a"], "e3": ["b", "c"]})
        reduced, _vmap, emap = reduce_hypergraph(h)
        assert reduced.num_edges == 2
        assert emap["e1"] == emap["e2"]

    def test_reduced_is_reduced(self):
        h = Hypergraph(
            {"e1": ["a", "b"], "e2": ["a", "b"], "e3": ["b", "c", "d"]}
        )
        reduced, _vmap, _emap = reduce_hypergraph(h)
        assert is_reduced(reduced)

    def test_preserves_rho_star(self):
        h = Hypergraph(
            {"e1": ["a", "b", "x"], "e2": ["x", "a", "b"], "e3": ["b", "c"]}
        )
        reduced, _vmap, _emap = reduce_hypergraph(h)
        assert fractional_edge_cover_number(h) == pytest.approx(
            fractional_edge_cover_number(reduced)
        )


@given(hypergraphs())
@settings(max_examples=30, deadline=None)
def test_duality_of_cover_numbers(h: Hypergraph):
    """ρ*(H) = τ*(H^d) (Section 5), on reduced hypergraphs."""
    reduced, _vmap, _emap = reduce_hypergraph(h)
    if reduced.isolated_vertices():
        return
    dual = dual_hypergraph(reduced)
    assert fractional_edge_cover_number(reduced) == pytest.approx(
        fractional_vertex_cover_number(dual), abs=1e-6
    )


@given(hypergraphs())
@settings(max_examples=30, deadline=None)
def test_reduce_idempotent(h: Hypergraph):
    reduced, _v, _e = reduce_hypergraph(h)
    again, vmap, emap = reduce_hypergraph(reduced)
    assert again.num_vertices == reduced.num_vertices
    assert again.num_edges == reduced.num_edges


def test_clique_duality_numbers():
    """ρ*(K6) = 3 = τ*(K6^d)."""
    k6 = clique(6)
    assert fractional_vertex_cover_number(dual_hypergraph(k6)) == pytest.approx(3.0)
