"""Tests for CQ parsing and query hypergraphs."""

import pytest

from repro.cqcsp import Atom, ConjunctiveQuery, parse_cq


class TestParser:
    def test_basic(self):
        q = parse_cq("ans(x, y) :- r(x, z), s(z, y).")
        assert q.head == ("x", "y")
        assert q.name == "ans"
        assert [a.relation for a in q.atoms] == ["r", "s"]

    def test_boolean_query(self):
        q = parse_cq(":- r(x), s(x)")
        assert q.is_boolean

    def test_missing_separator(self):
        with pytest.raises(ValueError, match=":-"):
            parse_cq("r(x), s(x)")

    def test_empty_body(self):
        with pytest.raises(ValueError, match="no atoms"):
            parse_cq("ans(x) :- ")

    def test_str_roundtrip(self):
        q = parse_cq("q(x) :- r(x, y).")
        assert parse_cq(str(q)) == q


class TestQuery:
    def test_unsafe_head_rejected(self):
        with pytest.raises(ValueError, match="unsafe"):
            ConjunctiveQuery(("z",), (Atom("r", ("x",)),))

    def test_no_atoms_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery((), ())

    def test_variables(self):
        q = parse_cq("q(x) :- r(x, y), s(y, z).")
        assert q.variables == frozenset({"x", "y", "z"})

    def test_empty_atom_rejected(self):
        with pytest.raises(ValueError):
            Atom("r", ())


class TestQueryHypergraph:
    def test_edges_per_atom_occurrence(self):
        q = parse_cq("q(x) :- r(x, y), r(y, z).")
        h = q.hypergraph()
        assert h.num_edges == 2  # self-join keeps both occurrences
        assert h.edge("r#0") == frozenset({"x", "y"})

    def test_atom_for_edge(self):
        q = parse_cq("q(x) :- r(x, y), s(y).")
        assert q.atom_for_edge("s#1").relation == "s"

    def test_repeated_variable_atom(self):
        q = parse_cq("q(x) :- r(x, x).")
        h = q.hypergraph()
        assert h.edge("r#0") == frozenset({"x"})

    def test_triangle_query_widths(self):
        from repro.algorithms import (
            fractional_hypertree_width_exact,
            hypertree_width,
        )

        q = parse_cq("q(x, y, z) :- r(x, y), s(y, z), t(z, x).")
        h = q.hypergraph()
        assert hypertree_width(h)[0] == 2
        assert fractional_hypertree_width_exact(h)[0] == pytest.approx(1.5)
