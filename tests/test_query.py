"""Tests for CQ parsing and query hypergraphs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cqcsp import Atom, ConjunctiveQuery, Const, parse_cq


class TestParser:
    def test_basic(self):
        q = parse_cq("ans(x, y) :- r(x, z), s(z, y).")
        assert q.head == ("x", "y")
        assert q.name == "ans"
        assert [a.relation for a in q.atoms] == ["r", "s"]

    def test_boolean_query(self):
        q = parse_cq(":- r(x), s(x)")
        assert q.is_boolean

    def test_missing_separator(self):
        with pytest.raises(ValueError, match=":-"):
            parse_cq("r(x), s(x)")

    def test_empty_body(self):
        with pytest.raises(ValueError, match="no atoms"):
            parse_cq("ans(x) :- ")

    def test_str_roundtrip(self):
        q = parse_cq("q(x) :- r(x, y).")
        assert parse_cq(str(q)) == q

    def test_constants(self):
        q = parse_cq("q(y) :- r(1, y), s(y, 'ann'), t(-3, y).")
        assert q.atoms[0].variables == (Const(1), "y")
        assert q.atoms[1].variables == ("y", Const("ann"))
        assert q.atoms[2].variables == (Const(-3), "y")
        assert q.variables == frozenset({"y"})

    def test_trailing_garbage_rejected(self):
        # Regression: the parser used to silently drop body fragments
        # its atom regex did not match (a truncated atom changed the
        # query instead of failing).
        with pytest.raises(ValueError, match="cannot parse"):
            parse_cq("q(x) :- r(x, y), s(y")
        with pytest.raises(ValueError, match="cannot parse"):
            parse_cq("q(x) :- r(x, y) junk")

    def test_empty_term_rejected(self):
        with pytest.raises(ValueError, match="stray comma"):
            parse_cq("q(x) :- r(x,,y).")

    def test_bad_term_rejected(self):
        with pytest.raises(ValueError, match="cannot parse term"):
            parse_cq("q(x) :- r(x, ?y).")

    def test_head_constant_rejected(self):
        with pytest.raises(ValueError, match="head terms must be variables"):
            parse_cq("q(1) :- r(1, y).")

    def test_single_trailing_dot_stripped(self):
        assert parse_cq("q(x) :- r(x, y).") == parse_cq("q(x) :- r(x, y)")
        with pytest.raises(ValueError, match="cannot parse"):
            parse_cq("q(x) :- r(x, y)..")

    def test_doubled_comma_between_atoms_rejected(self):
        # Regression: the gap check used to strip ALL commas, so
        # ',,' (and leading/trailing commas) parsed silently.
        with pytest.raises(ValueError, match="single comma"):
            parse_cq("q(x) :- r(x),, s(x).")

    def test_missing_comma_between_atoms_rejected(self):
        with pytest.raises(ValueError, match="single comma"):
            parse_cq("q(x) :- r(x) s(x).")

    def test_leading_comma_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_cq("q(x) :- , r(x).")

    def test_trailing_comma_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_cq("q(x) :- r(x), .")

    def test_quoted_constant_with_comma(self):
        # Regression: terms were split on bare commas before quote
        # handling, so 'a,b' died with "cannot parse term".
        q = parse_cq("q(x) :- r(x, 'a,b').")
        assert q.atoms[0].variables == ("x", Const("a,b"))
        assert parse_cq(str(q)) == q

    def test_quoted_constant_with_other_quote(self):
        q = parse_cq("q(x) :- r(x, \"ann's\").")
        assert q.atoms[0].variables == ("x", Const("ann's"))
        assert parse_cq(str(q)) == q

    def test_unbalanced_quote_rejected(self):
        with pytest.raises(ValueError, match="unbalanced"):
            parse_cq("q(x) :- r(x, 'a,b).")

    def test_embedded_quote_rejected(self):
        # No escape syntax: a closed quote followed by more text is an
        # error, never a truncated constant.
        with pytest.raises(ValueError, match="cannot parse term"):
            parse_cq("q(x) :- r(x, 'a'b, y).")


_NAMES = st.sampled_from(["r", "s", "t", "edge_2"])
_TERMS = st.one_of(
    st.sampled_from(["x", "y", "z", "var_1"]),
    st.integers(-9, 9).map(Const),
    # Commas and the *other* quote character are legal inside string
    # constants; the formatter picks the delimiter accordingly.
    st.sampled_from(
        ["ann", "b c", "", "a,b", "ann's", 'say "hi"', ",", " , "]
    ).map(Const),
)


@st.composite
def queries(draw):
    atoms = []
    for _ in range(draw(st.integers(1, 4))):
        terms = draw(st.lists(_TERMS, min_size=1, max_size=3))
        if not any(isinstance(t, str) for t in terms):
            terms.append(draw(st.sampled_from(["x", "y"])))
        atoms.append(Atom(draw(_NAMES), tuple(terms)))
    scope = sorted(
        {t for a in atoms for t in a.variables if isinstance(t, str)}
    )
    head = tuple(draw(st.permutations(scope))[: draw(st.integers(0, len(scope)))])
    return ConjunctiveQuery(head, tuple(atoms), name=draw(_NAMES))


class TestParserProperties:
    @settings(max_examples=100, deadline=None)
    @given(query=queries())
    def test_parse_format_parse_identity(self, query):
        parsed = parse_cq(str(query))
        # The name round-trips for non-Boolean queries only (Boolean
        # text has no head to carry it).
        assert parsed.head == query.head
        assert parsed.atoms == query.atoms
        if not query.is_boolean:
            assert parsed == query
            assert str(parsed) == str(query)

    @settings(max_examples=150, deadline=None)
    @given(text=st.text(max_size=40))
    def test_garbage_raises_value_error_only(self, text):
        # Malformed input must surface as ValueError with a message —
        # never an IndexError/AttributeError traceback, never a
        # silently mangled query.
        try:
            parse_cq(text)
        except ValueError as exc:
            assert str(exc)
        # Anything else propagating fails the test.


class TestQuery:
    def test_unsafe_head_rejected(self):
        with pytest.raises(ValueError, match="unsafe"):
            ConjunctiveQuery(("z",), (Atom("r", ("x",)),))

    def test_no_atoms_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery((), ())

    def test_variables(self):
        q = parse_cq("q(x) :- r(x, y), s(y, z).")
        assert q.variables == frozenset({"x", "y", "z"})

    def test_empty_atom_rejected(self):
        with pytest.raises(ValueError):
            Atom("r", ())


class TestQueryHypergraph:
    def test_edges_per_atom_occurrence(self):
        q = parse_cq("q(x) :- r(x, y), r(y, z).")
        h = q.hypergraph()
        assert h.num_edges == 2  # self-join keeps both occurrences
        assert h.edge("r#0") == frozenset({"x", "y"})

    def test_atom_for_edge(self):
        q = parse_cq("q(x) :- r(x, y), s(y).")
        assert q.atom_for_edge("s#1").relation == "s"

    def test_repeated_variable_atom(self):
        q = parse_cq("q(x) :- r(x, x).")
        h = q.hypergraph()
        assert h.edge("r#0") == frozenset({"x"})

    def test_triangle_query_widths(self):
        from repro.algorithms import (
            fractional_hypertree_width_exact,
            hypertree_width,
        )

        q = parse_cq("q(x, y, z) :- r(x, y), s(y, z), t(z, x).")
        h = q.hypergraph()
        assert hypertree_width(h)[0] == 2
        assert fractional_hypertree_width_exact(h)[0] == pytest.approx(1.5)
