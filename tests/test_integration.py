"""Cross-module integration tests: the paper's storyline end to end."""

import pytest

from repro import (
    CNF,
    Hypergraph,
    build_reduction,
    check_fhd,
    check_ghd,
    example_4_3_hypergraph,
    fractional_hypertree_width_exact,
    generalized_hypertree_decomposition,
    generalized_hypertree_width_exact,
    hypertree_width,
    integralize,
    parse_cq,
)
from repro.covers import EPS
from repro.decomposition import (
    is_bag_maximal,
    is_fhd,
    is_ghd,
    make_bag_maximal,
    normalize,
    check_fnf,
)
from repro.hypergraph import degree, hyperbench_like_suite, intersection_width


def test_story_section_3_hardness():
    """φ sat ⟺ width-2 GHD of the reduction hypergraph exists (LP-certified
    on both directions for a sat and an unsat formula)."""
    sat = CNF(((1, -2, 3), (-1, 2, -3)))
    unsat = CNF(((1, 1, 1), (-1, -1, -1)))
    r_sat, r_unsat = build_reduction(sat), build_reduction(unsat)
    assert r_sat.verify_forward() is not None
    assert r_unsat.verify_forward() is None
    assert r_sat.certify_equivalence()
    assert r_unsat.certify_equivalence()


def test_story_section_4_ghd_via_subedges():
    """ghw(H0) = 2 found through the subedge pipeline although
    Check(HD,2) rejects; the witness normalizes into FNF."""
    h0 = example_4_3_hypergraph()
    assert hypertree_width(h0)[0] == 3
    ghd = generalized_hypertree_decomposition(h0, 2)
    assert ghd is not None
    maximal = make_bag_maximal(h0, ghd)
    assert is_bag_maximal(h0, maximal)
    norm = normalize(h0, maximal)
    assert is_ghd(h0, norm, width=2)
    assert check_fnf(h0, norm) == []


def test_story_section_5_fhd_bounded_degree():
    """Check(FHD,k) solves the triangle exactly at fhw = 1.5."""
    t = parse_cq("q(x) :- r(x, y), s(y, z), t(z, x).").hypergraph()
    assert degree(t) == 2
    assert check_fhd(t, 1.5)
    assert not check_fhd(t, 1.4)


def test_story_section_6_approximation_chain():
    """fhw -> FHD -> integralized GHD with a bounded ratio."""
    h = example_4_3_hypergraph()
    fhw, fhd = fractional_hypertree_width_exact(h)
    ghd = integralize(h, fhd)
    assert is_ghd(h, ghd)
    ghw, _d = generalized_hypertree_width_exact(h)
    assert ghd.width() >= ghw - EPS


def test_hyperbench_suite_statistics_pipeline():
    """The E15 statistics pipeline runs: widths and BIP profile over a
    small suite, with the HyperBench-style observations holding."""
    suite = hyperbench_like_suite(seed=5, n_cq=6, n_csp=2)
    stats = {"acyclic": 0, "ghw2": 0, "bip2": 0}
    for h in suite:
        if intersection_width(h) <= 2:
            stats["bip2"] += 1
        if check_ghd(h, 1):
            stats["acyclic"] += 1
        elif check_ghd(h, 2):
            stats["ghw2"] += 1
    # The paper's empirical claim shape: most instances are acyclic or
    # ghw 2, and most CQs have small intersections.
    assert stats["acyclic"] + stats["ghw2"] >= len(suite) * 0.6
    assert stats["bip2"] >= len(suite) * 0.6


def test_widths_agree_across_all_engines():
    """hd-search, exact DP and subedge-GHD agree on a mixed bag."""
    instances = [
        Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"], "e3": ["c", "a"]}),
        example_4_3_hypergraph(),
    ]
    for h in instances:
        ghw_exact, _d = generalized_hypertree_width_exact(h)
        assert check_ghd(h, ghw_exact)
        assert not check_ghd(h, ghw_exact - 1) if ghw_exact > 1 else True
        fhw, _f = fractional_hypertree_width_exact(h)
        assert fhw <= ghw_exact + EPS


def test_public_api_importable():
    import repro

    assert repro.__version__
    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert not missing
