"""HyperBench-format I/O roundtrips."""

import pytest
from hypothesis import given, settings

from repro.hypergraph import Hypergraph
from repro.hypergraph.io import dump_file, load_file, parse_hyperbench, to_hyperbench

from .strategies import hypergraphs


class TestParse:
    def test_basic(self):
        h = parse_hyperbench("e1(a,b,c),\ne2(b,d).")
        assert h.num_edges == 2
        assert h.edge("e1") == frozenset({"a", "b", "c"})

    def test_comments_ignored(self):
        h = parse_hyperbench("% comment\ne1(a,b). # trailing\n")
        assert h.num_edges == 1

    def test_whitespace_tolerant(self):
        h = parse_hyperbench("  e1 ( a , b )  ,  e2(b,c).")
        assert h.edge("e2") == frozenset({"b", "c"})

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_hyperbench("e1(a), e1(b).")

    def test_empty_scope_rejected(self):
        with pytest.raises(ValueError, match="empty scope"):
            parse_hyperbench("e1().")

    def test_no_atoms_rejected(self):
        with pytest.raises(ValueError, match="no atoms"):
            parse_hyperbench("% nothing here")


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c", "d"]})
        path = tmp_path / "h.txt"
        dump_file(h, path)
        back = load_file(path)
        assert back.edges == h.edges

    def test_serialization_stable(self):
        h = Hypergraph({"b": ["x", "y"], "a": ["y", "z"]})
        assert to_hyperbench(h) == to_hyperbench(h)
        assert to_hyperbench(h).startswith("a(")


@given(hypergraphs())
@settings(max_examples=30, deadline=None)
def test_text_roundtrip_preserves_structure(h: Hypergraph):
    back = parse_hyperbench(to_hyperbench(h))
    assert back.edges == h.edges
    assert back.vertices == h.vertices
