"""Width lifting (end of Section 3): adding cliques raises widths exactly."""

import pytest

from repro.algorithms import (
    fractional_hypertree_width_exact,
    generalized_hypertree_width_exact,
)
from repro.covers import EPS, fractional_edge_cover_number
from repro.hardness import lift_by_clique, lift_by_cycle_windows
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import cycle


@pytest.fixture
def base() -> Hypergraph:
    """A triangle: ghw = 2, fhw = 1.5."""
    return Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})


class TestCliqueLift:
    def test_fhw_increases_by_ell(self, base):
        fhw0, _d = fractional_hypertree_width_exact(base)
        lifted = lift_by_clique(base, 1)
        fhw1, _d1 = fractional_hypertree_width_exact(lifted)
        assert fhw1 == pytest.approx(fhw0 + 1, abs=1e-6)

    def test_ghw_increases_by_ell(self, base):
        ghw0, _d = generalized_hypertree_width_exact(base)
        lifted = lift_by_clique(base, 1)
        ghw1, _d1 = generalized_hypertree_width_exact(lifted)
        assert ghw1 == ghw0 + 1

    def test_fresh_vertices_added(self, base):
        lifted = lift_by_clique(base, 2)
        assert lifted.num_vertices == base.num_vertices + 4

    def test_invalid_ell(self, base):
        with pytest.raises(ValueError):
            lift_by_clique(base, 0)


class TestCycleWindowLift:
    def test_fresh_cycle_cover_number(self):
        """The r-vertex/q-window fresh structure alone costs exactly r/q."""
        seed = Hypergraph({"e": ["old"]})
        lifted = lift_by_cycle_windows(seed, r=5, q=2)
        fresh = lifted.induced([f"lift{i}" for i in range(1, 6)])
        windows = fresh.restrict_edges(
            [n for n in fresh.edge_names if n.startswith("liftwin")]
        )
        assert fractional_edge_cover_number(windows) == pytest.approx(5 / 2)

    def test_rational_lift_on_triangle(self, base):
        fhw0, _d = fractional_hypertree_width_exact(base)
        lifted = lift_by_cycle_windows(base, r=3, q=2)
        fhw1, _d1 = fractional_hypertree_width_exact(lifted)
        assert fhw1 == pytest.approx(fhw0 + 3 / 2, abs=1e-6)

    def test_invalid_ratio(self, base):
        with pytest.raises(ValueError):
            lift_by_cycle_windows(base, r=2, q=2)


def test_lift_keeps_old_structure(base):
    """The old hypergraph is untouched inside the lifted one."""
    lifted = lift_by_clique(base, 1)
    for name in base.edge_names:
        assert lifted.edge(name) == base.edge(name)


def test_fhw_of_lifted_cycle():
    c4 = cycle(4)
    fhw0, _ = fractional_hypertree_width_exact(c4)
    lifted = lift_by_clique(c4, 1)
    fhw1, _ = fractional_hypertree_width_exact(lifted)
    assert fhw1 <= fhw0 + 1 + EPS
