"""Every paper condition has a validator; every validator catches its
violation."""

import pytest

from repro.decomposition import (
    Decomposition,
    check_connectedness,
    check_edge_coverage,
    check_fnf,
    check_fractional_part_bounded,
    check_special_condition,
    check_weak_special_condition,
    is_bag_maximal,
    is_fhd,
    is_ghd,
    is_hd,
    is_strict,
    treecomp,
    validate,
    violations,
)
from repro.hypergraph import Hypergraph
from repro.paper_artifacts import (
    example_4_3_hypergraph,
    figure_5_hd,
    figure_6a_ghd,
    figure_6b_ghd,
)


@pytest.fixture
def triangle() -> Hypergraph:
    return Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})


def triangle_ghd() -> Decomposition:
    return Decomposition.single_node(
        ["x", "y", "z"], {"r": 1.0, "s": 1.0}
    )


class TestConditionOne:
    def test_all_edges_covered(self, triangle):
        assert not check_edge_coverage(triangle, triangle_ghd())

    def test_missing_edge_detected(self, triangle):
        d = Decomposition.single_node(["x", "y"], {"r": 1.0})
        problems = check_edge_coverage(triangle, d)
        assert any("'s'" in p for p in problems)


class TestConditionTwo:
    def test_disconnected_vertex_detected(self, triangle):
        d = Decomposition.path(
            [
                ("a", ["x", "y"], {"r": 1.0}),
                ("b", ["y", "z"], {"s": 1.0}),
                ("c", ["z", "x"], {"t": 1.0}),
            ]
        )
        problems = check_connectedness(triangle, d)
        assert any("'x'" in p for p in problems)

    def test_stray_bag_vertex_detected(self, triangle):
        d = Decomposition.single_node(
            ["x", "y", "z", "ghost"], {"r": 1.0, "s": 1.0}
        )
        problems = check_connectedness(triangle, d)
        assert any("ghost" in p for p in problems)


class TestConditionThree:
    def test_uncovered_bag_detected(self, triangle):
        d = Decomposition.single_node(["x", "y", "z"], {"r": 1.0})
        problems = violations(triangle, d, kind="ghd")
        assert any("not covered" in p for p in problems)

    def test_fractional_cover_accepted_for_fhd(self, triangle):
        d = Decomposition.single_node(
            ["x", "y", "z"], {"r": 0.5, "s": 0.5, "t": 0.5}
        )
        assert is_fhd(triangle, d, width=1.5)
        assert not is_ghd(triangle, d)  # not integral

    def test_unknown_cover_edge_detected(self, triangle):
        d = Decomposition.single_node(["x"], {"zzz": 1.0})
        problems = violations(triangle, d, kind="ghd")
        assert any("unknown edges" in p for p in problems)


class TestSpecialCondition:
    def test_figure_6b_is_ghd_but_not_hd(self):
        """Example 4.4: Fig 6(b) violates the special condition at u0."""
        h0 = example_4_3_hypergraph()
        d = figure_6b_ghd()
        assert is_ghd(h0, d, width=2)
        problems = check_special_condition(h0, d)
        assert any("u0" in p and "v2" in p for p in problems)
        assert not is_hd(h0, d)

    def test_figure_5_is_hd(self):
        h0 = example_4_3_hypergraph()
        assert is_hd(h0, figure_5_hd(), width=3)

    def test_weak_special_condition_ignores_fractional_part(self, triangle):
        # γ has no weight-1 edge => weak special condition is vacuous.
        d = Decomposition.path(
            [
                ("a", ["x", "y", "z"], {"r": 0.5, "s": 0.5, "t": 0.5}),
                ("b", ["x", "y"], {"r": 0.9, "s": 0.9}),
            ]
        )
        assert not check_weak_special_condition(triangle, d)


class TestFractionalPart:
    def test_bounded(self, triangle):
        d = Decomposition.single_node(
            ["x", "y", "z"], {"r": 0.5, "s": 0.5, "t": 0.5}
        )
        assert check_fractional_part_bounded(triangle, d, 3) == []
        assert check_fractional_part_bounded(triangle, d, 2) != []

    def test_integral_cover_has_empty_fractional_part(self, triangle):
        assert (
            check_fractional_part_bounded(triangle, triangle_ghd(), 0) == []
        )


class TestStrictAndBagMaximal:
    def test_strict(self, triangle):
        strict = Decomposition.single_node(
            ["x", "y", "z"], {"r": 1.0, "s": 1.0}
        )
        assert is_strict(triangle, strict)
        loose = Decomposition.single_node(["x", "y"], {"r": 1.0, "s": 1.0})
        assert not is_strict(triangle, loose)

    def test_figure_6a_not_bag_maximal_but_6b_is(self):
        """Example 4.7 verbatim."""
        h0 = example_4_3_hypergraph()
        assert not is_bag_maximal(h0, figure_6a_ghd())
        assert is_bag_maximal(h0, figure_6b_ghd())


class TestFNF:
    def test_figure_6b_fnf(self):
        h0 = example_4_3_hypergraph()
        assert check_fnf(h0, figure_6b_ghd()) == []

    def test_treecomp_of_root_is_everything(self):
        h0 = example_4_3_hypergraph()
        d = figure_6b_ghd()
        assert treecomp(h0, d, "u0") == h0.vertices

    def test_treecomp_of_child(self):
        h0 = example_4_3_hypergraph()
        d = figure_6b_ghd()
        comp = treecomp(h0, d, "uprime")
        assert comp == frozenset({"v4", "v5"})

    def test_fnf_violation_detected(self, triangle):
        # Child bag disjoint from any [B_r]-component requirement.
        d = Decomposition.path(
            [
                ("a", ["x", "y", "z"], {"r": 1.0, "s": 1.0}),
                ("b", ["x", "y"], {"r": 1.0}),
            ]
        )
        problems = check_fnf(triangle, d)
        assert problems  # V(T_b) has no matching component


class TestValidateAPI:
    def test_validate_raises_with_details(self, triangle):
        d = Decomposition.single_node(["x", "y"], {"r": 1.0})
        with pytest.raises(ValueError, match="invalid GHD"):
            validate(triangle, d, kind="ghd")

    def test_validate_width_bound(self, triangle):
        d = triangle_ghd()
        validate(triangle, d, kind="ghd", width=2)
        with pytest.raises(ValueError, match="exceeds"):
            validate(triangle, d, kind="ghd", width=1)

    def test_unknown_kind(self, triangle):
        with pytest.raises(ValueError, match="kind"):
            violations(triangle, triangle_ghd(), kind="zzz")
