"""Tests for covers: LP wrapper, ρ*/ρ, τ*/τ, support bounds, gaps."""

import pytest
from hypothesis import given, settings

from repro.covers import (
    EPS,
    FractionalCover,
    cover_feasible_within,
    cover_integrality_gap,
    covered_vertices,
    dsw_gap_bound,
    edge_cover_number,
    edge_cover_of,
    exact_set_cover,
    fractional_cover_of,
    fractional_edge_cover,
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
    greedy_set_cover,
    minimal_support_cover,
    solve_covering_lp,
    transversal_integrality_gap,
    transversality,
)
from repro.hypergraph import Hypergraph, degree
from repro.hypergraph.generators import clique, cycle, unbounded_support_family

from .strategies import hypergraphs


class TestLPWrapper:
    def test_simple_cover(self):
        result = solve_covering_lp([[0], [0, 1], [1]], n_vars=2)
        assert result.feasible
        assert result.optimal == pytest.approx(2.0)

    def test_infeasible_when_element_uncoverable(self):
        result = solve_covering_lp([[0], []], n_vars=1)
        assert not result.feasible
        assert result.optimal is None

    def test_empty_universe(self):
        result = solve_covering_lp([], n_vars=3)
        assert result.feasible
        assert result.optimal == 0.0

    def test_fractional_optimum(self):
        # Triangle vertex cover LP: three constraints {0,1},{1,2},{0,2}
        result = solve_covering_lp([[0, 1], [1, 2], [0, 2]], n_vars=3)
        assert result.optimal == pytest.approx(1.5)

    def test_weights_snapped(self):
        result = solve_covering_lp([[0]], n_vars=2)
        assert result.weights[0] == 1.0
        assert result.weights[1] == 0.0


class TestFractionalCoverObject:
    def test_zero_weights_dropped(self):
        cover = FractionalCover({"a": 0.0, "b": 0.5})
        assert cover.support == frozenset({"b"})
        assert cover.weight == pytest.approx(0.5)

    def test_is_integral(self):
        assert FractionalCover({"a": 1.0}).is_integral()
        assert not FractionalCover({"a": 0.5}).is_integral()

    def test_restricted(self):
        cover = FractionalCover({"a": 0.5, "b": 0.5})
        assert cover.restricted(["a"]).support == frozenset({"a"})

    def test_integral_part(self):
        cover = FractionalCover({"a": 1.0, "b": 0.5})
        assert cover.scaled_to_integral_part().support == frozenset({"a"})

    def test_getitem(self):
        cover = FractionalCover({"a": 0.25})
        assert cover["a"] == 0.25
        assert cover["zzz"] == 0.0


class TestRhoStar:
    def test_lemma_2_3_clique_covers(self):
        """Lemma 2.3: ρ(K_2n) = ρ*(K_2n) = n."""
        for n in (2, 3, 4):
            k = clique(2 * n)
            assert fractional_edge_cover_number(k) == pytest.approx(n)
            assert edge_cover_number(k) == n

    def test_odd_clique_gap(self):
        """ρ*(K5) = 2.5 < 3 = ρ(K5): fractional covers can win."""
        k5 = clique(5)
        assert fractional_edge_cover_number(k5) == pytest.approx(2.5)
        assert edge_cover_number(k5) == 3

    def test_example_5_1_weight_and_support(self):
        """Example 5.1: weight 2 - 1/n with full support n + 1."""
        for n in (3, 5, 8):
            h = unbounded_support_family(n)
            cover = fractional_edge_cover(h)
            assert cover.weight == pytest.approx(2 - 1 / n)
            assert len(cover.support) == n + 1

    def test_isolated_vertex_rejected(self):
        h = Hypergraph({"e": ["a"]}, vertices=["iso"])
        with pytest.raises(ValueError, match="isolated"):
            fractional_edge_cover(h)

    def test_cover_of_subset(self):
        c6 = cycle(6)
        cover = fractional_cover_of(c6, ["v1", "v2"])
        assert cover is not None
        assert cover.weight == pytest.approx(1.0)

    def test_allowed_edges_restriction(self):
        c6 = cycle(6)
        cover = fractional_cover_of(c6, ["v1", "v2"], allowed_edges=["e3"])
        assert cover is None

    def test_cover_feasible_within(self):
        k5 = clique(5)
        assert cover_feasible_within(k5, k5.vertices, 2.5)
        assert not cover_feasible_within(k5, k5.vertices, 2.4)


class TestIntegral:
    def test_exact_set_cover_simple(self):
        sets = {"a": frozenset({1, 2}), "b": frozenset({2, 3}), "c": frozenset({3})}
        assert exact_set_cover(frozenset({1, 2, 3}), sets) == ["a", "b"]

    def test_exact_set_cover_limit(self):
        sets = {"a": frozenset({1}), "b": frozenset({2})}
        assert exact_set_cover(frozenset({1, 2}), sets, limit=1) is None
        assert exact_set_cover(frozenset({1, 2}), sets, limit=2) == ["a", "b"]

    def test_exact_set_cover_uncoverable(self):
        assert exact_set_cover(frozenset({1}), {"a": frozenset({2})}) is None

    def test_greedy_is_a_cover(self):
        sets = {
            "big": frozenset({1, 2, 3, 4}),
            "s1": frozenset({1, 5}),
            "s2": frozenset({5, 6}),
        }
        chosen = greedy_set_cover(frozenset(range(1, 7)), sets)
        covered = frozenset().union(*(sets[n] for n in chosen))
        assert frozenset(range(1, 7)) <= covered

    def test_edge_cover_of(self):
        c6 = cycle(6)
        cover = edge_cover_of(c6, c6.vertices)
        assert cover is not None
        assert cover.weight == 3.0
        assert cover.is_integral()

    def test_transversality_triangle(self):
        assert transversality(clique(3)) == 2  # hit all 3 edges

    def test_transversality_cycle(self):
        assert transversality(cycle(6)) == 3


class TestGapsAndBounds:
    def test_integrality_gap_k5(self):
        assert cover_integrality_gap(clique(5)) == pytest.approx(3 / 2.5)

    def test_tigap_triangle(self):
        assert transversal_integrality_gap(clique(3)) == pytest.approx(2 / 1.5)

    def test_dsw_bound_dominates_gap(self):
        for h in (clique(4), clique(5), clique(6), cycle(5), cycle(7)):
            assert cover_integrality_gap(h) <= dsw_gap_bound(h) + EPS

    def test_minimal_support_cover_respects_corollary_5_5(self):
        """Corollary 5.5: optimal covers with support <= d · ρ* exist."""
        for h in (cycle(6), clique(4), unbounded_support_family(5)):
            cover = minimal_support_cover(h, h.vertices)
            assert cover is not None
            rho = fractional_edge_cover_number(h)
            assert cover.weight == pytest.approx(rho, abs=1e-6)
            assert len(cover.support) <= degree(h) * rho + EPS

    def test_minimal_support_cover_of_uncoverable(self):
        h = Hypergraph({"e": ["a"]}, vertices=["iso"])
        assert minimal_support_cover(h, ["iso"]) is None


@given(hypergraphs())
@settings(max_examples=30, deadline=None)
def test_rho_star_below_rho(h: Hypergraph):
    """ρ*(H) <= ρ(H) always; both cover all vertices."""
    if h.isolated_vertices():
        return
    rho_star = fractional_edge_cover_number(h)
    rho = edge_cover_number(h)
    assert rho_star <= rho + EPS
    cover = fractional_edge_cover(h)
    assert covered_vertices(h, cover) >= h.vertices


@given(hypergraphs())
@settings(max_examples=25, deadline=None)
def test_tau_star_below_tau(h: Hypergraph):
    """τ*(H) <= τ(H) (LP relaxation of the hitting set ILP)."""
    assert fractional_vertex_cover_number(h) <= transversality(h) + EPS


@given(hypergraphs(max_vertices=6, max_edges=5))
@settings(max_examples=25, deadline=None)
def test_exact_set_cover_is_minimum(h: Hypergraph):
    """Branch-and-bound matches brute-force minimum set cover size."""
    from itertools import combinations

    universe = h.vertices
    names = list(h.edge_names)
    best = None
    for r in range(1, len(names) + 1):
        for combo in combinations(names, r):
            if frozenset().union(*(h.edge(n) for n in combo)) >= universe:
                best = r
                break
        if best is not None:
            break
    result = exact_set_cover(universe, h.edges)
    if best is None:
        assert result is None
    else:
        assert result is not None and len(result) == best
