"""JSON round trips and DOT export for decompositions."""

import pytest

from repro.decomposition import (
    Decomposition,
    decomposition_from_json,
    decomposition_to_dot,
    decomposition_to_json,
    is_ghd,
)
from repro.paper_artifacts import example_4_3_hypergraph, figure_6b_ghd


class TestJSON:
    def test_roundtrip_preserves_everything(self):
        original = figure_6b_ghd()
        back = decomposition_from_json(decomposition_to_json(original))
        assert back.root == original.root
        assert set(back.node_ids) == set(original.node_ids)
        for nid in original.node_ids:
            assert back.bag(nid) == original.bag(nid)
            assert back.cover(nid).weights == pytest.approx(
                original.cover(nid).weights
            )
            assert back.parent(nid) == original.parent(nid)

    def test_roundtrip_still_validates(self):
        h0 = example_4_3_hypergraph()
        back = decomposition_from_json(
            decomposition_to_json(figure_6b_ghd())
        )
        assert is_ghd(h0, back, width=2)

    def test_fractional_weights_survive(self):
        d = Decomposition.single_node(["x", "y"], {"e": 0.5, "f": 0.75})
        back = decomposition_from_json(decomposition_to_json(d))
        assert back.cover("root")["f"] == pytest.approx(0.75)

    def test_malformed_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            decomposition_from_json("{nope")

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError, match="missing key"):
            decomposition_from_json('{"root": "a"}')

    def test_missing_bag_rejected(self):
        with pytest.raises(ValueError, match="lacks bag"):
            decomposition_from_json(
                '{"root": "a", "parent": {}, "nodes": {"a": {}}}'
            )


class TestDOT:
    def test_dot_structure(self):
        dot = decomposition_to_dot(figure_6b_ghd(), title="fig6b")
        assert dot.startswith('digraph "fig6b"')
        assert '"u0" -> "u1"' in dot
        assert dot.rstrip().endswith("}")

    def test_dot_mentions_bags_and_covers(self):
        dot = decomposition_to_dot(figure_6b_ghd())
        assert "v3" in dot
        assert "e2:1" in dot

    def test_single_node_dot(self):
        d = Decomposition.single_node(["x"], {"e": 1.0})
        dot = decomposition_to_dot(d)
        assert "->" not in dot
