"""Tests for the reduce → split → solve → stitch pipeline.

The headline invariant (pinned property-based below): pipeline-on and
pipeline-off agree on hw / ghw / fhw for random hypergraphs, and every
stitched decomposition validates against the *original* hypergraph.
"""

import pytest
from hypothesis import given, settings

from repro.algorithms import (
    fractional_hypertree_width_exact,
    generalized_hypertree_width,
    generalized_hypertree_width_exact,
    hypertree_width,
    width_bounds,
)
from repro.covers import EPS
from repro.decomposition import (
    Decomposition,
    is_fhd,
    is_ghd,
    is_hd,
    replay_reductions,
    reroot,
    stitch_blocks,
)
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    clique,
    cycle,
    grid,
    path_hypergraph,
    triangle_cascade,
)
from repro.pipeline import (
    Block,
    WidthSolver,
    articulation_points,
    reduce_instance,
    rules_for,
    solve_width,
    split_instance,
)

from .strategies import hypergraphs


class TestReduce:
    def test_duplicates_and_subsumed(self):
        h = Hypergraph(
            {
                "big": ["a", "b", "c"],
                "dup": ["a", "b", "c"],
                "sub": ["a", "b"],
                "other": ["c", "d", "e"],
            }
        )
        r = reduce_instance(h, kind="ghd")
        assert "dup" not in r.hypergraph.edge_names
        assert "sub" not in r.hypergraph.edge_names
        assert r.edges_removed >= 2

    def test_twin_fusion(self):
        h = Hypergraph({"e1": ["a", "b", "x"], "e2": ["a", "b", "y"]})
        r = reduce_instance(h, kind="hd")
        # a and b share the edge-type {e1, e2}: one survives.
        assert r.hypergraph.num_vertices < h.num_vertices
        assert r.rule_counts.get("twin-vertices", 0) >= 1

    def test_degree_one_collapses_acyclic(self):
        h = path_hypergraph(5, 3, 1)
        r = reduce_instance(h, kind="ghd")
        assert r.hypergraph.num_vertices <= 2
        assert r.rule_counts.get("degree-one", 0) >= 1

    def test_hd_rules_keep_subsumed_edges(self):
        """hw is sensitive to subedges (Section 4): hd-safe rules must
        not drop them or strip degree-1 vertices."""
        assert "subsumed-edges" not in rules_for("hd")
        assert "degree-one" not in rules_for("hd")
        assert "subsumed-edges" in rules_for("ghd")

    def test_no_op_returns_same_object(self):
        h = cycle(6)
        r = reduce_instance(h, kind="ghd")
        assert r.hypergraph is h
        assert not r.changed

    def test_isolated_vertices_dropped(self):
        h = Hypergraph({"e": ["a", "b"]}, vertices=["z"])
        r = reduce_instance(h, kind="ghd")
        assert "z" not in r.hypergraph.vertices

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rules"):
            reduce_instance(cycle(4), rules=["zzz"])


class TestSplit:
    def test_triangle_cascade_blocks(self):
        h = triangle_cascade(3)
        blocks = split_instance(h)
        assert len(blocks) == 3
        # Forest is rooted and every non-root shares one articulation
        # vertex with its parent.
        roots = [b for b in blocks if b.parent is None]
        assert len(roots) == 1
        for b in blocks:
            if b.parent is not None:
                parent = blocks[b.parent]
                shared = b.hypergraph.vertices & parent.hypergraph.vertices
                assert shared == {b.cut_vertex}
        assert articulation_points(h) == {"t1", "t2"}

    def test_edges_partition_across_blocks(self):
        h = triangle_cascade(2)
        blocks = split_instance(h)
        names = sorted(
            name for b in blocks for name in b.hypergraph.edge_names
        )
        assert names == sorted(h.edge_names)

    def test_biconnected_instance_is_one_block(self):
        h = grid(3, 3)
        blocks = split_instance(h)
        assert len(blocks) == 1
        assert blocks[0].hypergraph is h

    def test_components_mode(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["c", "d"]})
        blocks = split_instance(h, mode="components")
        assert len(blocks) == 2
        assert all(b.parent is None for b in blocks)

    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            split_instance(cycle(4), mode="zzz")


class TestStitch:
    def test_reroot_preserves_nodes(self):
        d = Decomposition(
            [("a", ["x"], {"e": 1.0}), ("b", ["x", "y"], {"e": 1.0})],
            parent={"b": "a"},
        )
        r = reroot(d, "b")
        assert r.root == "b"
        assert set(r.node_ids) == {"a", "b"}
        assert r.parent("a") == "b"

    def test_stitch_blocks_joins_on_cut_vertex(self):
        d0 = Decomposition.single_node(["a", "b"], {"e1": 1.0}, node_id="n0")
        d1 = Decomposition.single_node(["b", "c"], {"e2": 1.0}, node_id="n0")
        joined = stitch_blocks([(d0, None, None), (d1, 0, "b")])
        assert len(joined) == 2
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"]})
        assert is_ghd(h, joined, width=1)

    def test_replay_restores_degree_one_leaf(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"]})
        r = reduce_instance(h, kind="ghd")
        solved = Decomposition.single_node(
            r.hypergraph.vertices, {next(iter(r.hypergraph.edge_names)): 1.0}
        )
        lifted = replay_reductions(solved, r.undo)
        assert is_ghd(h, lifted, width=1)


# ----------------------------------------------------------------------
# The pipeline invariant (acceptance criterion): pipeline-on equals
# pipeline-off on every width measure, and stitched witnesses validate
# against the original hypergraph.
# ----------------------------------------------------------------------
@given(hypergraphs(max_vertices=7, max_edges=6))
@settings(max_examples=25, deadline=None)
def test_pipeline_invariant_hw(h: Hypergraph):
    k_on, d_on = hypertree_width(h)
    k_off, _d_off = hypertree_width(h, preprocess="none")
    assert k_on == k_off
    assert is_hd(h, d_on, width=k_on)


@given(hypergraphs(max_vertices=7, max_edges=6))
@settings(max_examples=25, deadline=None)
def test_pipeline_invariant_ghw(h: Hypergraph):
    k_on, d_on = generalized_hypertree_width_exact(h)
    k_off, _d_off = generalized_hypertree_width_exact(h, preprocess="none")
    assert k_on == k_off
    assert is_ghd(h, d_on, width=k_on)


@given(hypergraphs(max_vertices=7, max_edges=6))
@settings(max_examples=25, deadline=None)
def test_pipeline_invariant_fhw(h: Hypergraph):
    w_on, d_on = fractional_hypertree_width_exact(h)
    w_off, _d_off = fractional_hypertree_width_exact(h, preprocess="none")
    assert w_on == pytest.approx(w_off)
    assert is_fhd(h, d_on, width=w_on + EPS)


@given(hypergraphs(max_vertices=7, max_edges=6))
@settings(max_examples=15, deadline=None)
def test_pipeline_invariant_subedge_ghw(h: Hypergraph):
    """The polynomial Check(GHD,k) route agrees with itself across
    pipeline settings (and with the exact oracle transitively)."""
    k_on, d_on = generalized_hypertree_width(h)
    k_off, _d_off = generalized_hypertree_width(h, preprocess="none")
    assert k_on == k_off
    assert is_ghd(h, d_on, width=k_on)


class TestWidthSolver:
    def test_blocks_solved_independently(self):
        h = triangle_cascade(3)
        solver = WidthSolver(h)
        width, d = solver.generalized_hypertree_width()
        assert width == 2
        assert is_ghd(h, d, width=2)
        stats = solver.last_stats
        assert stats.blocks == 3
        assert stats.block_sizes == [(3, 3)] * 3
        assert stats.kind == "ghd"

    def test_parallel_matches_serial(self):
        h = triangle_cascade(3)
        serial = WidthSolver(h).generalized_hypertree_width()
        threaded = WidthSolver(h, jobs=2).generalized_hypertree_width()
        assert serial[0] == threaded[0] == 2
        assert is_ghd(h, threaded[1], width=2)

    def test_process_executor(self):
        h = triangle_cascade(2)
        solver = WidthSolver(h, jobs=2, executor="process")
        width, d = solver.fractional_hypertree_width_exact()
        assert width == pytest.approx(1.5)
        assert is_fhd(h, d, width=width + EPS)

    def test_speculative_cross_k(self):
        """With one block and several jobs, checks above the frontier
        run speculatively; the answer is still the minimum k."""
        h = clique(5)
        solver = WidthSolver(h, jobs=3)
        width, d = solver.hypertree_width()
        assert width == 3
        assert is_hd(h, d, width=3)
        assert solver.last_stats.speculative_checks >= 1

    def test_preprocess_none_is_single_block(self):
        h = triangle_cascade(2)
        solver = WidthSolver(h, preprocess="none")
        width, _d = solver.generalized_hypertree_width()
        assert width == 2
        assert solver.last_stats.blocks == 1

    def test_block_vertex_limit_beats_whole_instance(self):
        """Two K6 blocks share a vertex: 11 vertices per block but 2^22
        for the raw DP — the pipeline solves it under a per-block limit
        that the raw oracle rejects."""
        k6a = {f"a{i}{j}": [f"x{i}", f"x{j}"] for i in range(6) for j in range(i + 1, 6)}
        k6b = {f"b{i}{j}": [f"y{i}", f"y{j}"] for i in range(6) for j in range(i + 1, 6)}
        for name in list(k6b):
            k6b[name] = ["x0" if v == "y0" else v for v in k6b[name]]
        h = Hypergraph({**k6a, **k6b})
        assert h.num_vertices == 11
        width, d = fractional_hypertree_width_exact(h, vertex_limit=6)
        assert width == pytest.approx(3.0)
        assert is_fhd(h, d, width=width + EPS)
        with pytest.raises(ValueError, match="exceeds"):
            fractional_hypertree_width_exact(
                h, vertex_limit=6, preprocess="none"
            )

    def test_kmax_cap_error_preserved(self):
        with pytest.raises(ValueError, match="cap"):
            WidthSolver(clique(6)).hypertree_width(kmax=2)

    def test_bad_preprocess(self):
        with pytest.raises(ValueError, match="preprocess"):
            WidthSolver(cycle(4), preprocess="zzz")

    def test_solve_width_dispatch(self):
        width, _d = solve_width(cycle(6), kind="fhw")
        assert width == pytest.approx(2.0)
        with pytest.raises(ValueError, match="kind"):
            solve_width(cycle(6), kind="zzz")

    def test_heuristic_bounds_blockwise(self):
        h = triangle_cascade(3)
        lower, upper, witness = width_bounds(h)
        assert lower == pytest.approx(1.5)
        assert upper == pytest.approx(1.5)
        assert is_fhd(h, witness, width=upper + EPS)


class TestPortfolio:
    """solver="portfolio": SAT and branch-and-bound raced per task.

    The contract under test: answers identical to either engine alone
    (both are exact), exactly one loser cancelled per raced task that
    settled, and no speculation above an accepted k.
    """

    def test_serial_portfolio_counts_deterministic(self):
        h = triangle_cascade(3)
        solver = WidthSolver(h, solver="portfolio", bounds="none")
        width, d = solver.generalized_hypertree_width()
        assert width == 2
        assert is_ghd(h, d, width=2)
        stats = solver.last_stats
        # 3 blocks x (k=1 reject, k=2 accept) x 2 engines, and exactly
        # one loser per raced (block, k) task.
        assert stats.tasks_run == 12
        assert stats.tasks_cancelled == 6
        assert stats.tasks_cancelled == stats.tasks_run // 2

    def test_parallel_portfolio_loser_cancelled_once_per_task(self):
        # bounds="none" so the full k = 1..3 climb actually races (the
        # clique lower bound would otherwise prune k < 3).
        h = clique(5)
        solver = WidthSolver(h, jobs=3, solver="portfolio", bounds="none")
        width, d = solver.hypertree_width()
        assert width == 3
        assert is_hd(h, d, width=3)
        stats = solver.last_stats
        # Two futures per raced task; at most one cancellation per
        # task, and every recorded task (at least k = 1..3) has one.
        assert stats.tasks_run % 2 == 0
        assert 3 <= stats.tasks_cancelled <= stats.tasks_run // 2

    def test_portfolio_identical_to_each_engine_alone_e07(self):
        """The E07 scaling instance: widths and check verdicts agree
        across bb, sat, and portfolio, and all witnesses validate."""
        h = triangle_cascade(4)
        answers = {}
        for mode in ("bb", "sat", "portfolio"):
            hw_w, hw_d = WidthSolver(h, solver=mode).hypertree_width()
            ghw_w, ghw_d = WidthSolver(
                h, solver=mode
            ).generalized_hypertree_width()
            reject = WidthSolver(h, solver=mode).hypertree_decomposition(1)
            accept = WidthSolver(h, solver=mode).hypertree_decomposition(2)
            assert is_hd(h, hw_d, width=hw_w)
            assert is_ghd(h, ghw_d, width=ghw_w)
            assert reject is None
            assert is_hd(h, accept, width=2)
            answers[mode] = (hw_w, ghw_w, reject is None, accept is not None)
        assert answers["portfolio"] == answers["bb"] == answers["sat"]

    def test_no_speculation_above_accepted_k(self):
        """Once some k is accepted, no task above it is ever generated,
        whatever the budget (monotonicity of Check(X, k))."""
        from repro.pipeline.batch import BatchRequest, BatchScheduler

        scheduler = BatchScheduler(solver="portfolio", bounds="none")
        scheduler.submit(BatchRequest(clique(4), "ghw"))
        instance = scheduler.instances[0]
        instance.prepare("full", "portfolio", "none")
        assert instance.engines == ("check-ghd", "sat-check-ghd")
        instance.record(0, 3, object())  # accepted at k=3, k<3 unknown
        tasks = instance.next_tasks(100)
        assert tasks, "k < 3 still needs checking"
        assert all(k < 3 for _prio, _b, k in tasks)

    def test_sat_mode_alone(self):
        h = triangle_cascade(3)
        solver = WidthSolver(h, solver="sat")
        width, d = solver.generalized_hypertree_width()
        assert width == 2
        assert is_ghd(h, d, width=2)
        assert solver.last_stats.tasks_cancelled == 0

    def test_non_check_kinds_never_race(self):
        from repro.pipeline import engines_for

        assert engines_for("check-ghd", "portfolio") == (
            "check-ghd",
            "sat-check-ghd",
        )
        assert engines_for("check-ghd", "sat") == ("sat-check-ghd",)
        assert engines_for("fhw-exact", "portfolio") == ("fhw-exact",)
        assert engines_for("heuristic-bounds", "sat") == ("heuristic-bounds",)
        with pytest.raises(ValueError, match="solver"):
            engines_for("check-ghd", "zzz")

    def test_bad_solver_mode(self):
        with pytest.raises(ValueError, match="solver"):
            WidthSolver(cycle(4), solver="zzz")

    def test_batch_portfolio_counts_deterministic(self):
        from repro.pipeline import solve_many
        from repro.pipeline.batch import last_batch_stats

        results = solve_many(
            [(triangle_cascade(3), "ghw")], solver="portfolio", bounds="none"
        )
        assert results[0].unwrap()[0] == 2
        stats = last_batch_stats()
        assert stats.tasks_run == 12
        assert stats.tasks_cancelled == 6
