"""Tests for the unified width report."""

import pytest

from repro.algorithms import WidthReport, width_report
from repro.covers import EPS
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    acyclic_hypergraph,
    clique,
    cycle,
    grid,
)
from repro.paper_artifacts import example_4_3_hypergraph


class TestExactRange:
    def test_example_4_3_report(self):
        report = width_report(example_4_3_hypergraph())
        assert report.exact
        assert report.hw == 3
        assert report.ghw == 2.0
        assert report.fhw == pytest.approx(2.0)
        assert report.iwidth == 1 and report.miwidth3 == 1

    def test_triangle(self):
        t = Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})
        report = width_report(t)
        assert report.hw == 2
        assert report.fhw == pytest.approx(1.5)

    def test_acyclic_short_circuit(self):
        import random

        h = acyclic_hypergraph(6, 3, rng=random.Random(0))
        report = width_report(h)
        assert report.acyclic and report.exact
        assert report.hw == 1 and report.ghw == 1.0 and report.fhw == 1.0

    def test_hw_cap_gives_none(self):
        report = width_report(clique(9), exact_limit=14, hw_cap=2)
        assert report.hw is None  # hw(K9) = 5 > cap
        assert report.ghw == 5.0

    def test_as_dict_roundtrip(self):
        data = width_report(cycle(5)).as_dict()
        assert data["vertices"] == 5
        assert WidthReport(**data).ghw == 2.0


class TestBracketedRange:
    def test_grid_5x5_brackets(self):
        report = width_report(grid(5, 5))
        assert not report.exact
        assert report.hw is None
        assert report.ghw_lower <= report.ghw_upper
        assert report.fhw_lower <= report.fhw_upper + EPS
        # Known: ghw(grid 5x5) = 3 lies inside the bracket.
        assert report.ghw_lower - EPS <= 3 <= report.ghw_upper + EPS

    def test_vc_skipped_on_large(self):
        report = width_report(grid(5, 5))
        assert report.vc is None

    def test_forced_bracket_mode(self):
        report = width_report(cycle(6), exact_limit=3)
        assert not report.exact
        assert report.ghw_lower - EPS <= 2 <= report.ghw_upper + EPS
