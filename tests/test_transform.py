"""Transformations: bag-maximality, pruning, FNF, SCV repair, projection."""

import pytest

from repro.decomposition import (
    check_fnf,
    is_bag_maximal,
    is_ghd,
    is_hd,
    make_bag_maximal,
    normalize,
    project_to_original,
    prune_redundant_nodes,
    repair_special_violations,
    special_condition_violations,
    violations,
)
from repro.hypergraph import Hypergraph
from repro.paper_artifacts import (
    example_4_3_hypergraph,
    figure_6a_ghd,
    figure_6b_ghd,
)


class TestBagMaximality:
    def test_example_4_7_pipeline(self):
        """Fig 6(a) --bag-maximalize--> --prune--> Fig 6(b), verbatim."""
        h0 = example_4_3_hypergraph()
        start = figure_6a_ghd()
        assert not is_bag_maximal(h0, start)

        maximal = make_bag_maximal(h0, start)
        assert is_bag_maximal(h0, maximal)
        assert is_ghd(h0, maximal, width=2)
        # u' absorbed v4, v5 (Example 4.7).
        assert maximal.bag("uprime") == frozenset(
            {"v3", "v4", "v5", "v6", "v9", "v10"}
        )

        pruned = prune_redundant_nodes(h0, maximal)
        assert len(pruned) == len(figure_6b_ghd())
        target_bags = sorted(
            sorted(figure_6b_ghd().bag(n)) for n in figure_6b_ghd().node_ids
        )
        got_bags = sorted(sorted(pruned.bag(n)) for n in pruned.node_ids)
        assert got_bags == target_bags

    def test_width_preserved(self):
        h0 = example_4_3_hypergraph()
        assert make_bag_maximal(h0, figure_6a_ghd()).width() == 2.0

    def test_already_maximal_unchanged(self):
        h0 = example_4_3_hypergraph()
        d = figure_6b_ghd()
        again = make_bag_maximal(h0, d)
        assert {n: again.bag(n) for n in again.node_ids} == {
            n: d.bag(n) for n in d.node_ids
        }


class TestNormalize:
    def test_figure_6_normalization_is_valid_fnf(self):
        h0 = example_4_3_hypergraph()
        for start in (figure_6a_ghd(), figure_6b_ghd()):
            norm = normalize(h0, make_bag_maximal(h0, start))
            assert is_ghd(h0, norm, width=2)
            assert check_fnf(h0, norm) == []

    def test_normalize_splits_multi_component_child(self):
        """A child covering two [B_r]-components must be split."""
        h = Hypergraph(
            {
                "mid": ["m1", "m2"],
                "left": ["m1", "l"],
                "right": ["m2", "r"],
            }
        )
        bad = (
            # Root covers the middle; single child covers both sides.
            # FNF condition 1 fails at the child (two components).
            __import__("repro.decomposition", fromlist=["Decomposition"])
            .Decomposition(
                [
                    ("root", ["m1", "m2"], {"mid": 1.0}),
                    ("child", ["m1", "l", "m2", "r"], {"left": 1.0, "right": 1.0}),
                ],
                parent={"child": "root"},
            )
        )
        assert check_fnf(h, bad) != []
        norm = normalize(h, bad)
        assert is_ghd(h, norm, width=2)
        assert check_fnf(h, norm) == []
        assert len(norm) == 3  # root + one node per component

    def test_normalize_drops_redundant_subtree(self):
        h = Hypergraph({"e": ["a", "b"]})
        d = (
            __import__("repro.decomposition", fromlist=["Decomposition"])
            .Decomposition(
                [
                    ("root", ["a", "b"], {"e": 1.0}),
                    ("child", ["a"], {"e": 1.0}),
                ],
                parent={"child": "root"},
            )
        )
        norm = normalize(h, d)
        assert len(norm) == 1


class TestSCVRepair:
    def test_example_4_4_repair(self):
        """Fig 6(b)'s SCV at u0 repairs via subedge {v3, v9}."""
        h0 = example_4_3_hypergraph()
        d = figure_6b_ghd()
        scvs = special_condition_violations(h0, d)
        assert ("u0", "e2", frozenset({"v2"})) in scvs

        augmented, repaired = repair_special_violations(h0, d)
        new_names = set(augmented.edge_names) - set(h0.edge_names)
        assert any(
            augmented.edge(n) == frozenset({"v3", "v9"}) for n in new_names
        )
        assert is_hd(augmented, repaired, width=2)

    def test_projection_back_gives_ghd(self):
        h0 = example_4_3_hypergraph()
        augmented, repaired = repair_special_violations(h0, figure_6b_ghd())
        back = project_to_original(h0, augmented, repaired)
        assert is_ghd(h0, back, width=2)

    def test_no_violations_noop(self):
        h = Hypergraph({"e": ["a", "b"]})
        d = (
            __import__("repro.decomposition", fromlist=["Decomposition"])
            .Decomposition([("root", ["a", "b"], {"e": 1.0})], parent={})
        )
        augmented, repaired = repair_special_violations(h, d)
        assert augmented.num_edges == 1
        assert repaired.cover("root").support == frozenset({"e"})


class TestProjection:
    def test_unknown_originator_rejected(self):
        h = Hypergraph({"e": ["a", "b"]})
        aug = h.with_edges({"extra": ["a", "b", "c"]})
        # "extra" is not a subedge of anything in h (it is bigger).
        d = (
            __import__("repro.decomposition", fromlist=["Decomposition"])
            .Decomposition(
                [("root", ["a", "b", "c"], {"extra": 1.0})], parent={}
            )
        )
        with pytest.raises(ValueError, match="originator"):
            project_to_original(h, aug, d)

    def test_weights_merge_on_shared_originator(self):
        h = Hypergraph({"e": ["a", "b", "c"]})
        aug = h.with_edges({"s1": ["a"], "s2": ["b"]})
        d = (
            __import__("repro.decomposition", fromlist=["Decomposition"])
            .Decomposition(
                [("root", ["a", "b", "c"], {"s1": 0.5, "s2": 0.5, "e": 0.5})],
                parent={},
            )
        )
        back = project_to_original(h, aug, d)
        assert back.cover("root")["e"] == pytest.approx(1.5)


def test_validation_catches_unrepaired_hd_claim():
    """Negative control: claiming Fig 6(b) is an HD fails loudly."""
    h0 = example_4_3_hypergraph()
    problems = violations(h0, figure_6b_ghd(), kind="hd")
    assert problems


class TestNormalizeFHD:
    def test_normalize_preserves_fractional_covers(self):
        """Theorem A.3 applies verbatim to FHDs: normalizing a fractional
        decomposition keeps validity, width and fractional covers."""
        from repro.algorithms import fractional_hypertree_width_exact
        from repro.decomposition import is_fhd
        from repro.hypergraph.generators import clique

        k5 = clique(5)
        fhw, fhd = fractional_hypertree_width_exact(k5)
        norm = normalize(k5, make_bag_maximal(k5, fhd))
        assert is_fhd(k5, norm, width=fhw + 1e-9)
        assert check_fnf(k5, norm) == []

    def test_normalize_random_fhds(self):
        import random

        from repro.algorithms import fractional_hypertree_width_exact
        from repro.decomposition import is_fhd
        from repro.hypergraph.generators import random_cq_hypergraph

        for seed in range(4):
            h = random_cq_hypergraph(
                4, max_arity=3, cyclicity=0.5, rng=random.Random(seed)
            )
            if h.num_vertices > 10:
                continue
            fhw, fhd = fractional_hypertree_width_exact(h)
            norm = normalize(h, make_bag_maximal(h, fhd))
            assert is_fhd(h, norm, width=fhw + 1e-9)
            assert check_fnf(h, norm) == []


class TestRepairProjectRoundtrip:
    def test_random_ghds_roundtrip(self):
        """exact GHD -> subedge repair -> HD of H' -> project back -> GHD
        of H, all validated, width preserved (the Section 4 cycle)."""
        import random

        from repro.algorithms import generalized_hypertree_width_exact
        from repro.hypergraph.generators import random_cq_hypergraph

        done = 0
        for seed in range(8):
            h = random_cq_hypergraph(
                4, max_arity=3, cyclicity=0.6, rng=random.Random(seed + 40)
            )
            if h.num_vertices > 10:
                continue
            ghw, ghd = generalized_hypertree_width_exact(h)
            augmented, repaired = repair_special_violations(h, ghd)
            assert is_hd(augmented, repaired, width=ghw)
            back = project_to_original(h, augmented, repaired)
            assert is_ghd(h, back, width=ghw)
            done += 1
        assert done >= 4
