"""Documentation health: docstrings, doc-sync, and markdown links.

Three guarantees, all tier-1:

* every public function/class in ``repro.pipeline`` and
  ``repro.engine`` (and the top-level ``repro`` surface) has a
  nonempty docstring, including public methods and properties;
* the README and docs quote the CLI truthfully — the ``--preprocess``
  and ``--solver`` choices documented in markdown are exactly the
  parser's (which in turn are exactly ``PREPROCESS_MODES`` and
  ``SOLVER_MODES``), and every ``repro <cmd>`` snippet names a real
  subcommand;
* relative markdown links in README + docs/ resolve to files that
  exist (CI additionally runs ``tools/check_md_links.py``).
"""

import importlib
import importlib.util
import inspect
import re
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser
from repro.pipeline import (
    BOUNDS_MODES,
    EXECUTORS,
    PREPROCESS_MODES,
    SOLVER_MODES,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The modules whose entire public surface must be documented.
DOCUMENTED_MODULES = (
    "repro.pipeline",
    "repro.pipeline.batch",
    "repro.pipeline.reduce",
    "repro.pipeline.solve",
    "repro.pipeline.solver",
    "repro.pipeline.split",
    "repro.engine",
    "repro.engine.backends",
    "repro.engine.context",
    "repro.engine.oracle",
    "repro.engine.search",
    "repro.sat",
    "repro.sat.backends",
    "repro.sat.checks",
    "repro.sat.encoding",
    "repro.sat.solver",
    "repro.store",
    "repro.store.log",
    "repro.serve",
    "repro.serve.protocol",
    "repro.serve.server",
    "repro.serve.client",
    "repro.dist",
    "repro.dist.protocol",
    "repro.dist.registry",
    "repro.dist.executor",
    "repro.dist.worker",
    "repro.cqcsp",
    "repro.cqcsp.query",
    "repro.cqcsp.relations",
    "repro.cqcsp.evaluate",
    "repro.cqcsp.yannakakis",
    "repro.cqcsp.planner",
    "repro.cqcsp.csp",
    "repro.cqcsp.workloads",
)

MARKDOWN_FILES = ("README.md", "docs/api.md", "docs/architecture.md", "docs/benchmarks.md")


def _public_members(module):
    """(qualified name, object) pairs that must carry docstrings."""
    exported = getattr(module, "__all__", None)
    if exported is None:  # pragma: no cover - all our modules set __all__
        exported = [n for n in vars(module) if not n.startswith("_")]
    for name in exported:
        obj = getattr(module, name)
        if not callable(obj) and not inspect.isclass(obj):
            continue  # constants (tuples, dicts) documented via comments
        yield f"{module.__name__}.{name}", obj
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if isinstance(attr, property) or callable(attr):
                    yield f"{module.__name__}.{name}.{attr_name}", attr


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_public_api_has_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip()
    missing = [
        qualified
        for qualified, obj in _public_members(module)
        if not (getattr(obj, "__doc__", None) or "").strip()
    ]
    assert not missing, f"undocumented public API: {missing}"


def test_top_level_exports_have_docstrings():
    missing = []
    for name in repro.__all__:
        if name == "__version__":
            continue
        obj = getattr(repro, name)
        if not (getattr(obj, "__doc__", None) or "").strip():
            missing.append(name)
    assert not missing, f"undocumented top-level exports: {missing}"


def _cli_preprocess_choices() -> tuple:
    """The --preprocess choices straight from the argument parser."""
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, type(parser._subparsers._group_actions[0]))
    )
    width = subparsers.choices["width"]
    action = next(a for a in width._actions if a.dest == "preprocess")
    return tuple(action.choices)


def test_cli_preprocess_choices_single_sourced():
    assert _cli_preprocess_choices() == PREPROCESS_MODES


@pytest.mark.parametrize("markdown", ["README.md", "docs/api.md"])
def test_markdown_preprocess_choices_match_cli_help(markdown):
    """The docs quote the CLI's --preprocess choices verbatim."""
    text = (REPO_ROOT / markdown).read_text()
    quoted = re.findall(r"--preprocess\s*\{([a-z,]+)\}", text)
    assert quoted, f"{markdown} must document the --preprocess choices"
    for group in quoted:
        assert tuple(group.split(",")) == _cli_preprocess_choices(), (
            f"{markdown} documents --preprocess {{{group}}} but the CLI "
            f"help says {{{','.join(_cli_preprocess_choices())}}}"
        )


def _cli_solver_choices() -> tuple:
    """The --solver choices straight from the argument parser."""
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, type(parser._subparsers._group_actions[0]))
    )
    width = subparsers.choices["width"]
    action = next(a for a in width._actions if a.dest == "solver")
    return tuple(action.choices)


def test_cli_solver_choices_single_sourced():
    assert _cli_solver_choices() == SOLVER_MODES


@pytest.mark.parametrize("markdown", ["docs/api.md", "docs/architecture.md"])
def test_markdown_solver_choices_match_cli_help(markdown):
    """The docs quote the CLI's --solver choices verbatim."""
    text = (REPO_ROOT / markdown).read_text()
    quoted = re.findall(r"--solver\s*\{([a-z,]+)\}", text)
    assert quoted, f"{markdown} must document the --solver choices"
    for group in quoted:
        assert tuple(group.split(",")) == _cli_solver_choices(), (
            f"{markdown} documents --solver {{{group}}} but the CLI "
            f"help says {{{','.join(_cli_solver_choices())}}}"
        )


def _cli_bounds_choices() -> tuple:
    """The --bounds choices straight from the argument parser."""
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, type(parser._subparsers._group_actions[0]))
    )
    width = subparsers.choices["width"]
    action = next(a for a in width._actions if a.dest == "bounds")
    return tuple(action.choices)


def test_cli_bounds_choices_single_sourced():
    assert _cli_bounds_choices() == BOUNDS_MODES


@pytest.mark.parametrize("markdown", ["docs/api.md", "docs/architecture.md"])
def test_markdown_bounds_choices_match_cli_help(markdown):
    """The docs quote the CLI's --bounds choices verbatim."""
    text = (REPO_ROOT / markdown).read_text()
    quoted = re.findall(r"--bounds\s*\{([a-z,]+)\}", text)
    assert quoted, f"{markdown} must document the --bounds choices"
    for group in quoted:
        assert tuple(group.split(",")) == _cli_bounds_choices(), (
            f"{markdown} documents --bounds {{{group}}} but the CLI "
            f"help says {{{','.join(_cli_bounds_choices())}}}"
        )


def _cli_executor_choices() -> tuple:
    """The --executor choices straight from the batch subparser."""
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, type(parser._subparsers._group_actions[0]))
    )
    batch = subparsers.choices["batch"]
    action = next(a for a in batch._actions if a.dest == "executor")
    return tuple(action.choices)


def test_cli_executor_choices_single_sourced():
    """``--executor`` on batch *and* serve come from EXECUTORS."""
    assert _cli_executor_choices() == EXECUTORS
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, type(parser._subparsers._group_actions[0]))
    )
    serve = subparsers.choices["serve"]
    action = next(a for a in serve._actions if a.dest == "executor")
    assert tuple(action.choices) == EXECUTORS


@pytest.mark.parametrize("markdown", ["docs/api.md"])
def test_markdown_executor_choices_match_cli_help(markdown):
    """The docs quote the CLI's --executor choices verbatim."""
    text = (REPO_ROOT / markdown).read_text()
    quoted = re.findall(r"--executor\s*\{([a-z,]+)\}", text)
    assert quoted, f"{markdown} must document the --executor choices"
    for group in quoted:
        assert tuple(group.split(",")) == _cli_executor_choices(), (
            f"{markdown} documents --executor {{{group}}} but the CLI "
            f"help says {{{','.join(_cli_executor_choices())}}}"
        )


def test_worker_flags_documented():
    """The worker subcommand's knobs exist and are documented."""
    worker = _subcommands()["worker"]
    flags = {s for action in worker._actions for s in action.option_strings}
    for flag in ("--connect", "--jobs", "--idle-timeout", "--backend"):
        assert flag in flags, f"repro worker lost its {flag} flag"
    api = (REPO_ROOT / "docs/api.md").read_text()
    assert "--connect" in api and "--idle-timeout" in api
    assert "--wait-workers" in api and "--listen" in api


def test_markdown_cli_snippets_name_real_subcommands():
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, type(parser._subparsers._group_actions[0]))
    )
    known = set(subparsers.choices)
    for markdown in MARKDOWN_FILES:
        text = (REPO_ROOT / markdown).read_text()
        # Shell snippets only: 'repro <cmd>' at line start, possibly
        # behind PYTHONPATH=... / python -m (not 'from repro import').
        snippet = re.compile(
            r"(?m)^\s*(?:PYTHONPATH=\S+\s+)?(?:python -m\s+)?repro\s+"
            r"([a-z][a-z-]*)"
        )
        for command in snippet.findall(text):
            assert command in known, (
                f"{markdown} mentions 'repro {command}' but the CLI has "
                f"no such subcommand (has: {sorted(known)})"
            )


def test_relative_markdown_links_resolve():
    """Run the CI link checker (tools/check_md_links.py) as a test."""
    spec = importlib.util.spec_from_file_location(
        "check_md_links", REPO_ROOT / "tools" / "check_md_links.py"
    )
    checker = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(checker)
    files = checker.checked_files()
    assert len(files) >= len(MARKDOWN_FILES)
    broken = [p for f in files for p in checker.check_file(f)]
    assert not broken, f"broken links: {broken}"


def test_batch_kinds_documented_in_api_reference():
    from repro.pipeline import BATCH_KINDS

    text = (REPO_ROOT / "docs/api.md").read_text()
    missing = [kind for kind in BATCH_KINDS if f'"{kind}"' not in text]
    assert not missing, f"docs/api.md does not document kinds: {missing}"


def _subcommands():
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, type(parser._subparsers._group_actions[0]))
    )
    return subparsers.choices


def test_every_subcommand_documented_in_api_reference():
    """`docs/api.md` shows a `repro <cmd>` snippet for every command."""
    text = (REPO_ROOT / "docs/api.md").read_text()
    missing = [
        command
        for command in _subcommands()
        if not re.search(rf"\brepro {re.escape(command)}\b", text)
    ]
    assert not missing, f"docs/api.md does not mention: {missing}"


def test_query_flags_documented():
    """The query subcommand's knobs exist and are documented."""
    query = _subcommands()["query"]
    flags = {s for action in query._actions for s in action.option_strings}
    for flag in ("--data", "--manifest", "--store", "--json"):
        assert flag in flags, f"repro query lost its {flag} flag"
    api = (REPO_ROOT / "docs/api.md").read_text()
    assert "repro query" in api
    assert "--data" in api and "--manifest" in api
    # The /query endpoint is part of the serve contract.
    assert "/query" in api


def test_serve_admission_flags_documented():
    """The serve subcommand's admission knobs exist and are documented."""
    serve = _subcommands()["serve"]
    flags = {s for action in serve._actions for s in action.option_strings}
    for flag in ("--host", "--port", "--store", "--fsync",
                 "--max-in-flight", "--max-queue"):
        assert flag in flags, f"repro serve lost its {flag} flag"
    api = (REPO_ROOT / "docs/api.md").read_text()
    assert "--max-in-flight" in api and "--max-queue" in api


def test_version_single_sourced():
    """pyproject.toml builds its version from ``repro.__version__``."""
    import tomllib

    data = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    assert "version" not in data["project"], (
        "pyproject.toml hardcodes a version; it must stay dynamic"
    )
    assert "version" in data["project"]["dynamic"]
    wiring = data["tool"]["setuptools"]["dynamic"]["version"]
    assert wiring == {"attr": "repro.__version__"}
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
