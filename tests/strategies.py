"""Hypothesis strategies for hypergraphs and CNF formulas."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.hardness import CNF
from repro.hypergraph import Hypergraph


@st.composite
def hypergraphs(
    draw,
    max_vertices: int = 8,
    max_edges: int = 8,
    max_edge_size: int = 4,
) -> Hypergraph:
    """Small connected-or-not hypergraphs without isolated vertices."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    vertices = [f"v{i}" for i in range(n)]
    m = draw(st.integers(min_value=1, max_value=max_edges))
    edges = {}
    for i in range(m):
        size = draw(st.integers(min_value=1, max_value=min(max_edge_size, n)))
        edge = draw(
            st.sets(
                st.sampled_from(vertices), min_size=size, max_size=size
            )
        )
        edges[f"e{i}"] = frozenset(edge)
    # Ensure no isolated vertices: drop vertices not in any edge by
    # simply constructing from edges alone.
    return Hypergraph(edges)


@st.composite
def cnf_formulas(draw, max_vars: int = 5, max_clauses: int = 8) -> CNF:
    """Small 3SAT formulas (exactly 3 literals, possibly repeated vars)."""
    n = draw(st.integers(min_value=1, max_value=max_vars))
    m = draw(st.integers(min_value=1, max_value=max_clauses))
    clauses = []
    for _ in range(m):
        clause = tuple(
            draw(st.integers(min_value=1, max_value=n))
            * draw(st.sampled_from([1, -1]))
            for _ in range(3)
        )
        clauses.append(clause)
    return CNF(tuple(clauses))
