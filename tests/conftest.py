"""Shared fixtures: small hypergraphs with known widths."""

from __future__ import annotations

import random

import pytest

from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    acyclic_hypergraph,
    clique,
    cycle,
    grid,
    random_cq_hypergraph,
)
from repro.paper_artifacts import example_4_3_hypergraph


@pytest.fixture
def triangle() -> Hypergraph:
    """Three binary edges forming a triangle: hw = ghw = 2, fhw = 1.5."""
    return Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})


@pytest.fixture
def small_acyclic() -> Hypergraph:
    return acyclic_hypergraph(5, 3, rng=random.Random(7))


@pytest.fixture
def c6() -> Hypergraph:
    return cycle(6)


@pytest.fixture
def k4() -> Hypergraph:
    return clique(4)


@pytest.fixture
def k5() -> Hypergraph:
    return clique(5)


@pytest.fixture
def grid33() -> Hypergraph:
    return grid(3, 3)


@pytest.fixture
def paper_h0() -> Hypergraph:
    return example_4_3_hypergraph()


def small_random_suite(count: int = 8, seed: int = 3) -> list[Hypergraph]:
    """Deterministic pool of small random CQ hypergraphs for oracles."""
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        out.append(
            random_cq_hypergraph(
                n_atoms=rng.randint(3, 6),
                max_arity=3,
                cyclicity=rng.choice([0.0, 0.3, 0.6]),
                rng=random.Random(rng.randint(0, 10**9)),
            )
        )
    return [h for h in out if h.num_vertices <= 12]
