"""The persistent result store: round trips, crash tolerance, trust.

This is the proof obligation of ``repro.store``:

* **round trip** — solve, persist, reload (new handle and a genuinely
  fresh process), and the served answers have identical widths with
  witnesses that re-validate, at zero exact Check tasks and zero LP
  solves (Hypothesis drives the hypergraph shapes);
* **fault injection** — truncate the log mid-record, flip payload and
  header bytes, kill a writer between fsyncs: the store must open,
  skip the bad tail, and *recompute* — a damaged store may cost work,
  never a wrong answer;
* **untrusted input** — stored witnesses and imported oracle entries
  are re-validated before use; corrupt covers and fake "infeasible"
  verdicts are rejected.
"""

import json
import subprocess
import sys
import zlib
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.oracle import CoverOracle
from repro.hypergraph import Hypergraph
from repro.pipeline import BatchRequest, solve_many
from repro.pipeline.batch import BatchScheduler
from repro.store import (
    STORE_FILENAME,
    ResultStore,
    checked_witness,
    params_fingerprint,
)
from repro.store.log import _HEADER, _MAGIC

from .strategies import hypergraphs

REPO_ROOT = Path(__file__).resolve().parent.parent


def triangle() -> Hypergraph:
    return Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})


def path4() -> Hypergraph:
    return Hypergraph({"a": ["1", "2"], "b": ["2", "3"], "c": ["3", "4"]})


def solve_with_store(store, requests, **kwargs):
    """solve_many on a shared scheduler; returns (results, stats)."""
    scheduler = BatchScheduler(store=store, **kwargs)
    handles = [scheduler.submit(BatchRequest.of(r)) for r in requests]
    scheduler.run()
    return handles, scheduler.last_stats


# ----------------------------------------------------------------------
# Fingerprints and witness re-validation
# ----------------------------------------------------------------------
class TestParamsFingerprint:
    def test_empty_and_none_agree(self):
        assert params_fingerprint(None) == "{}"
        assert params_fingerprint({}) == "{}"

    def test_order_independent(self):
        assert params_fingerprint({"a": 1, "b": 2}) == params_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_distinct_params_distinct_fingerprints(self):
        assert params_fingerprint({"k": 2}) != params_fingerprint({"k": 3})

    def test_unserializable_is_opaque(self):
        fp = params_fingerprint({"find_fhd": lambda h: None})
        assert fp == "!opaque"


class TestCheckedWitness:
    def _witness_payload(self, h, kind="ghw"):
        (result,) = solve_many([BatchRequest(h, kind)])
        width, witness = result.value
        return width, witness.as_dict()

    def test_valid_witness_round_trips(self):
        h = triangle()
        width, payload = self._witness_payload(h)
        dec = checked_witness(h, payload, "ghd", width=width + 1e-9)
        assert dec is not None
        assert dec.width() == pytest.approx(width)

    def test_wrong_hypergraph_is_a_miss(self):
        h = triangle()
        _, payload = self._witness_payload(h)
        other = Hypergraph({"e": ["a", "b", "c", "d"]})
        assert checked_witness(other, payload, "ghd") is None

    def test_width_bound_enforced(self):
        h = triangle()
        width, payload = self._witness_payload(h)
        assert checked_witness(h, payload, "ghd", width=width - 0.5) is None

    def test_garbage_payloads_are_misses(self):
        h = triangle()
        for garbage in (None, [], "x", {"bags": "nope"}, {}):
            assert checked_witness(h, garbage, "ghd") is None


# ----------------------------------------------------------------------
# Log mechanics
# ----------------------------------------------------------------------
class TestResultStoreLog:
    def test_append_get_and_last_write_wins(self, tmp_path):
        with ResultStore(tmp_path) as store:
            assert store.append(("t", "k1"), {"v": 1})
            assert not store.append(("t", "k1"), {"v": 2})  # immutable
            assert store.get(("t", "k1")) == {"v": 1}
            assert store.append(("t", "k1"), {"v": 3}, overwrite=True)
            assert store.get(("t", "k1")) == {"v": 3}
            assert ("t", "k1") in store and len(store) == 1

    def test_reload_sees_live_values(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.append(("a", 1), {"v": 1})
            store.append(("b", 2), {"v": 2})
            store.append(("a", 1), {"v": 9}, overwrite=True)
        with ResultStore(tmp_path) as store:
            assert store.stats.records_loaded == 3
            assert store.stats.records_skipped == 0
            assert len(store) == 2
            assert store.get(("a", 1)) == {"v": 9}

    def test_type_counts(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.append(("block", "h1"), {})
            store.append(("block", "h2"), {})
            store.append(("oracle", "h1"), {})
            assert store.type_counts() == {"block": 2, "oracle": 1}

    def test_empty_and_missing_log(self, tmp_path):
        with ResultStore(tmp_path / "fresh") as store:
            assert len(store) == 0
            assert store.stats.bytes_valid == 0


def _fill(tmp_path, n=4):
    """A store directory holding n well-formed records."""
    with ResultStore(tmp_path) as store:
        for i in range(n):
            store.append(("t", i), {"v": i})
    return tmp_path / STORE_FILENAME


class TestFaultInjection:
    """Every corruption opens as a shorter store, never a wrong one."""

    def test_truncated_mid_payload(self, tmp_path):
        log = _fill(tmp_path)
        data = log.read_bytes()
        log.write_bytes(data[:-5])  # tear the last record's payload
        with ResultStore(tmp_path) as store:
            assert store.stats.records_loaded == 3
            assert store.stats.records_skipped == 1
            assert store.stats.bytes_skipped > 0
            assert store.get(("t", 2)) == {"v": 2}
            assert store.get(("t", 3)) is None

    def test_truncated_mid_header(self, tmp_path):
        one = _fill(tmp_path / "one", n=1).stat().st_size
        log = _fill(tmp_path / "two", n=2)
        # Keep record 1 plus half of record 2's header.
        log.write_bytes(log.read_bytes()[: one + _HEADER.size // 2])
        with ResultStore(tmp_path / "two") as store:
            assert store.stats.records_loaded == 1
            assert store.stats.records_skipped == 1
            assert store.get(("t", 0)) == {"v": 0}

    def test_flipped_payload_byte_fails_crc(self, tmp_path):
        log = _fill(tmp_path)
        data = bytearray(log.read_bytes())
        # Corrupt one byte inside the *first* record's payload: the
        # whole log after it is unreachable (no resync by design).
        data[_HEADER.size + 4] ^= 0xFF
        log.write_bytes(bytes(data))
        with ResultStore(tmp_path) as store:
            assert store.stats.records_loaded == 0
            assert len(store) == 0
            assert store.stats.bytes_skipped == len(data)

    def test_bad_magic_stops_load(self, tmp_path):
        log = _fill(tmp_path, n=3)
        with ResultStore(tmp_path) as probe:
            good = probe.stats.bytes_valid
        data = bytearray(log.read_bytes())
        offset = data.rindex(_MAGIC)  # the last record's magic
        data[offset : offset + 4] = b"XXXX"
        log.write_bytes(bytes(data))
        with ResultStore(tmp_path) as store:
            assert store.stats.records_loaded == 2
            assert store.stats.bytes_valid < good

    def test_absurd_length_field_rejected(self, tmp_path):
        log = _fill(tmp_path, n=1)
        payload = b"{}"
        bad = _HEADER.pack(_MAGIC, 2**31, zlib.crc32(payload)) + payload
        log.write_bytes(log.read_bytes() + bad)
        with ResultStore(tmp_path) as store:
            assert store.stats.records_loaded == 1
            assert store.stats.records_skipped == 1

    def test_non_json_payload_rejected(self, tmp_path):
        log = _fill(tmp_path, n=1)
        payload = b"\xff\xfenot json"
        bad = _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload
        log.write_bytes(log.read_bytes() + bad)
        with ResultStore(tmp_path) as store:
            assert store.stats.records_loaded == 1
            assert store.stats.records_skipped == 1

    def test_append_truncates_bad_tail(self, tmp_path):
        log = _fill(tmp_path, n=2)
        log.write_bytes(log.read_bytes() + b"\x00" * 17)  # torn write
        with ResultStore(tmp_path) as store:
            assert store.stats.bytes_skipped == 17
            store.append(("t", "new"), {"v": "n"})
            assert store.stats.bytes_skipped == 0
        # The tail is physically gone: a clean reload sees 3 records.
        with ResultStore(tmp_path) as store:
            assert store.stats.records_loaded == 3
            assert store.stats.records_skipped == 0
            assert store.get(("t", "new")) == {"v": "n"}

    def test_writer_killed_between_fsyncs(self, tmp_path):
        """A child killed mid-append leaves a loadable good prefix."""
        script = (
            "import os, sys\n"
            "sys.path.insert(0, %r)\n"
            "from repro.store import ResultStore, STORE_FILENAME\n"
            "store = ResultStore(sys.argv[1], fsync=True)\n"
            "store.append(('t', 'synced'), {'v': 1})\n"
            "# Simulate dying between write and fsync: append the next\n"
            "# record's header with no payload, then hard-exit.\n"
            "store._file.write(b'RPS1' + b'\\x00\\x00\\x01\\x00')\n"
            "store._file.flush()\n"
            "os._exit(9)\n"
        ) % str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 9, proc.stderr
        with ResultStore(tmp_path) as store:
            assert store.stats.records_loaded == 1
            assert store.stats.records_skipped == 1
            assert store.get(("t", "synced")) == {"v": 1}


# ----------------------------------------------------------------------
# Typed records: validation on the read path
# ----------------------------------------------------------------------
class TestTypedRecords:
    def test_block_round_trip(self, tmp_path):
        h = triangle()
        (result,) = solve_many([BatchRequest(h, "ghw")])
        width, witness = result.value
        with ResultStore(tmp_path) as store:
            store.put_block(h, "ghd", "bb", None, width, witness)
        with ResultStore(tmp_path) as store:
            got = store.get_block(h, "ghd", "bb", None)
            assert got is not None
            assert got[0] == width
            assert got[1].width() == pytest.approx(width)
            # Key dimensions matter: other solver/kind/params miss.
            assert store.get_block(h, "ghd", "sat", None) is None
            assert store.get_block(h, "hd", "bb", None) is None
            assert store.get_block(h, "ghd", "bb", {"x": 1}) is None

    def test_block_corrupt_witness_is_a_miss(self, tmp_path):
        h = triangle()
        with ResultStore(tmp_path) as store:
            store.append(
                ("block", h.canonical_hash(), "ghd", "bb", "{}"),
                {"width": 2, "witness": {"nonsense": True}},
            )
            assert store.get_block(h, "ghd", "bb", None) is None

    def test_block_understated_width_is_a_miss(self, tmp_path):
        """A witness wider than the claimed width must not be served."""
        h = triangle()
        (result,) = solve_many([BatchRequest(h, "ghw")])
        width, witness = result.value
        with ResultStore(tmp_path) as store:
            store.append(
                ("block", h.canonical_hash(), "ghd", "bb", "{}"),
                {"width": width - 1, "witness": witness.as_dict()},
            )
            assert store.get_block(h, "ghd", "bb", None) is None

    def test_check_round_trip_accept_and_reject(self, tmp_path):
        h = triangle()
        (acc,) = solve_many([BatchRequest(h, "check-ghd", {"k": 2})])
        with ResultStore(tmp_path) as store:
            store.put_check(h, "ghd", 2, "bb", None, acc.value)
            store.put_check(h, "ghd", 1, "bb", None, None)
        with ResultStore(tmp_path) as store:
            accepted, witness = store.get_check(h, "ghd", 2, "bb", None)
            assert accepted and witness.width() <= 2 + 1e-9
            assert store.get_check(h, "ghd", 1, "bb", None) == (False, None)
            assert store.get_check(h, "ghd", 3, "bb", None) is None

    def test_opaque_params_never_persisted(self, tmp_path):
        h = triangle()
        with ResultStore(tmp_path) as store:
            store.put_instance(
                h, "ghw", "bb", {"fn": lambda: None}, {"width": 2}
            )
            assert len(store) == 0


# ----------------------------------------------------------------------
# Oracle export / import: untrusted entries
# ----------------------------------------------------------------------
class TestOracleImport:
    def _warm_oracle(self):
        h = triangle()
        oracle = CoverOracle(h)
        for bag in (frozenset("xy"), frozenset("xyz")):
            oracle.fractional_cover(bag)
        return h, oracle

    def test_export_import_round_trip(self):
        h, oracle = self._warm_oracle()
        entries = oracle.export_entries()
        assert entries
        fresh = CoverOracle(h)
        assert fresh.import_entries(entries) == len(entries)
        before = fresh.stats.lp_solves
        # Imported covers are upper-bound hints: feasibility questions
        # they satisfy are answered without an LP solve ...
        for bag in (frozenset("xy"), frozenset("xyz")):
            assert fresh.cover_feasible_within(bag, 1.5)
        assert fresh.stats.lp_solves == before  # served from the import
        # ... but exact ρ* queries never trust them and re-solve.
        cover = fresh.fractional_cover(frozenset("xyz"))
        assert cover is not None and cover.weight == pytest.approx(1.5)
        assert fresh.stats.lp_solves == before + 1

    def test_suboptimal_import_cannot_flip_verdicts(self):
        """A feasible-but-heavy record must never inflate ρ*.

        Regression: imported covers used to land in the authoritative
        cache, so a weight-3 cover of the triangle (ρ* = 1.5) made
        ``cover_feasible_within(bag, 2)`` report False and flipped
        check verdicts.  As a hint it proves only ρ* <= 3.
        """
        h = triangle()
        bag = ["x", "y", "z"]
        heavy = [["frac", sorted(bag), None, {"r": 1.0, "s": 1.0, "t": 1.0}]]
        fresh = CoverOracle(h)
        assert fresh.import_entries(heavy) == 1
        # Within the hint's weight: answered hint-only, no LP.
        assert fresh.cover_feasible_within(bag, 3.0)
        assert fresh.stats.lp_solves == 0
        # Below the hint's weight the LP decides — and says feasible.
        assert fresh.cover_feasible_within(bag, 2.0)
        assert fresh.stats.lp_solves == 1
        assert fresh.fractional_weight(bag) == pytest.approx(1.5)

    def test_capped_import_must_be_purely_fractional(self):
        """'capped' entries with a weight-1 edge are rejected outright."""
        h = triangle()
        bag = sorted(["x", "y", "z"])
        integral = [["capped", bag, None, {"r": 1.0, "s": 1.0, "t": 1.0}]]
        fractional = [["capped", bag, None, {"r": 0.5, "s": 0.5, "t": 0.5}]]
        fresh = CoverOracle(h)
        assert fresh.import_entries(integral) == 0
        assert fresh.import_entries(fractional) == 1
        # Budgeted queries the hint satisfies skip the LP; the
        # unbudgeted (exact-optimum) form always solves.
        gamma = fresh.fractional_cover_capped(bag, budget=1.5)
        assert gamma is not None
        assert gamma.weight == pytest.approx(1.5)
        assert fresh.stats.lp_solves == 0
        exact = fresh.fractional_cover_capped(bag)
        assert exact is not None and exact.weight == pytest.approx(1.5)
        assert fresh.stats.lp_solves > 0

    def test_corrupt_cover_rejected(self):
        h, oracle = self._warm_oracle()
        entries = oracle.export_entries()
        bad = [list(e) for e in entries]
        for entry in bad:
            if entry[3] is not None:
                entry[3] = {name: 0.01 for name in entry[3]}  # not a cover
        fresh = CoverOracle(h)
        assert fresh.import_entries(bad) == 0

    def test_fake_infeasible_rejected(self):
        h, _ = self._warm_oracle()
        # Claim {x, y} has no cover among all edges — a lie.
        fake = [["frac", ["x", "y"], None, None]]
        fresh = CoverOracle(h)
        assert fresh.import_entries(fake) == 0

    def test_malformed_entries_skipped(self):
        h, _ = self._warm_oracle()
        fresh = CoverOracle(h)
        garbage = [
            None,
            [],
            ["frac"],
            ["unknown-kind", ["x"], None, None],
            ["frac", ["not-a-vertex"], None, None],
            ["frac", ["x"], ["not-an-edge"], {"not-an-edge": 1.0}],
        ]
        assert fresh.import_entries(garbage) == 0


# ----------------------------------------------------------------------
# End to end: solve → persist → reload → serve without solving
# ----------------------------------------------------------------------
class TestStoreServing:
    KINDS = ("hw", "ghw", "fhw")

    def test_second_run_is_free(self, tmp_path):
        h1, h2 = triangle(), path4()
        requests = [BatchRequest(h, k) for h in (h1, h2) for k in self.KINDS]
        with ResultStore(tmp_path) as store:
            first, _ = solve_with_store(store, requests)
        with ResultStore(tmp_path) as store:  # fresh handle = "restart"
            second, stats = solve_with_store(store, requests)
        assert stats.store_instance_hits == len(requests)
        assert stats.tasks_run == 0
        assert stats.lp_solves == 0
        for a, b in zip(first, second):
            assert b.ok
            assert b.value[0] == pytest.approx(a.value[0])

    def test_block_seeding_after_partial_damage(self, tmp_path):
        """Losing the tail costs recomputation, never correctness."""
        h = triangle()
        with ResultStore(tmp_path) as store:
            (first,), _ = solve_with_store(store, [BatchRequest(h, "ghw")])
        log = tmp_path / STORE_FILENAME
        log.write_bytes(log.read_bytes()[:-11])  # tear the last record
        with ResultStore(tmp_path) as store:
            assert store.stats.records_skipped == 1
            (again,), _ = solve_with_store(store, [BatchRequest(h, "ghw")])
        assert again.ok
        assert again.value[0] == first.value[0]

    def test_fresh_process_round_trip(self, tmp_path):
        """The acceptance check, cross-process: restart really is free."""
        script = (
            "import json, sys\n"
            "sys.path.insert(0, %r)\n"
            "from repro.hypergraph import Hypergraph\n"
            "from repro.pipeline import BatchRequest\n"
            "from repro.pipeline.batch import BatchScheduler\n"
            "from repro.store import ResultStore\n"
            "h = Hypergraph(json.loads(sys.argv[2]))\n"
            "with ResultStore(sys.argv[1]) as store:\n"
            "    s = BatchScheduler(store=store)\n"
            "    handles = [s.submit(BatchRequest(h, k))"
            " for k in ('hw', 'ghw', 'fhw')]\n"
            "    s.run()\n"
            "    print(json.dumps({\n"
            "        'widths': [r.value[0] for r in handles],\n"
            "        'hits': s.last_stats.store_instance_hits,\n"
            "        'tasks': s.last_stats.tasks_run,\n"
            "        'lp': s.last_stats.lp_solves,\n"
            "    }))\n"
        ) % str(REPO_ROOT / "src")
        edges = {"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]}

        def run():
            proc = subprocess.run(
                [sys.executable, "-c", script, str(tmp_path), json.dumps(edges)],
                capture_output=True,
                text=True,
            )
            assert proc.returncode == 0, proc.stderr
            return json.loads(proc.stdout)

        cold, warm = run(), run()
        assert cold["hits"] == 0
        assert warm["hits"] == 3
        assert warm["tasks"] == 0 and warm["lp"] == 0
        assert warm["widths"] == cold["widths"]

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(h=hypergraphs(max_vertices=6, max_edges=5), data=st.data())
    def test_round_trip_property(self, h, data, tmp_path_factory):
        """∀ hypergraphs: persist + reload serves identical widths
        with re-validated witnesses and no solving."""
        kind = data.draw(st.sampled_from(["hw", "ghw", "fhw"]), label="kind")
        base = tmp_path_factory.mktemp("store")
        with ResultStore(base) as store:
            (first,), _ = solve_with_store(store, [BatchRequest(h, kind)])
        with ResultStore(base) as store:
            (second,), stats = solve_with_store(store, [BatchRequest(h, kind)])
        assert first.ok and second.ok
        assert stats.store_instance_hits == 1
        assert stats.tasks_run == 0 and stats.lp_solves == 0
        assert second.value[0] == pytest.approx(first.value[0])
        witness = second.value[1]
        if witness is not None:
            # Served witnesses passed checked_witness on the way out.
            assert witness.width() <= first.value[0] + 1e-6
