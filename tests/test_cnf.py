"""Tests for the SAT substrate."""

from itertools import product

import pytest
from hypothesis import given, settings

from repro.hardness import CNF, dpll, paper_example_formula, random_3sat

from .strategies import cnf_formulas


def brute_force_satisfiable(formula: CNF) -> bool:
    n = formula.num_variables
    return any(
        formula.evaluate(list(bits)) for bits in product([False, True], repeat=n)
    )


class TestCNF:
    def test_counts(self):
        f = CNF(((1, -2, 3), (2, -3, 1)))
        assert f.num_variables == 3
        assert f.num_clauses == 2

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            CNF(((),))

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            CNF(((0, 1, 2),))

    def test_as_3sat_pads(self):
        f = CNF(((1, -2),)).as_3sat()
        assert all(len(c) == 3 for c in f.clauses)
        assert brute_force_satisfiable(f) == brute_force_satisfiable(
            CNF(((1, -2),))
        )

    def test_as_3sat_rejects_wide(self):
        with pytest.raises(ValueError):
            CNF(((1, 2, 3, 4),)).as_3sat()

    def test_evaluate(self):
        f = CNF(((1, -2, 3),))
        assert f.evaluate([True, True, False])
        assert not f.evaluate([False, True, False])

    def test_evaluate_short_assignment(self):
        with pytest.raises(ValueError):
            CNF(((1, 2, 3),)).evaluate([True])


class TestDPLL:
    def test_paper_formula_satisfiable(self):
        f = paper_example_formula()
        model = f.satisfying_assignment()
        assert model is not None
        assert f.evaluate(model)

    def test_simple_unsat(self):
        f = CNF(((1, 1, 1), (-1, -1, -1)))
        assert not f.is_satisfiable()

    def test_unit_propagation_chain(self):
        f = CNF(((1,), (-1, 2), (-2, 3), (-3, -1, 4)))
        model = dpll(f)
        assert model is not None and f.evaluate(model)

    def test_pigeonhole_2_into_1(self):
        # p1 ∨ p2; ¬p1 ∨ ¬p2 with forced singles: unsat core shape.
        f = CNF(((1, 2), (-1,), (-2,)))
        assert dpll(f) is None

    def test_random_instances_roundtrip(self):
        for seed in range(5):
            f = random_3sat(5, 12, rng=__import__("random").Random(seed))
            assert f.is_satisfiable() == brute_force_satisfiable(f)


@given(cnf_formulas())
@settings(max_examples=60, deadline=None)
def test_dpll_matches_bruteforce(formula: CNF):
    model = dpll(formula)
    if model is None:
        assert not brute_force_satisfiable(formula)
    else:
        assert formula.evaluate(model)
