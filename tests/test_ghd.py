"""Tests for Check(GHD,k) via subedge augmentation (Section 4)."""

import pytest

from repro.algorithms import (
    augmented_hypergraph,
    check_ghd,
    generalized_hypertree_decomposition,
    generalized_hypertree_width,
    generalized_hypertree_width_exact,
)
from repro.decomposition import is_ghd
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import clique, cycle, grid, triangle_cascade
from repro.paper_artifacts import example_4_3_hypergraph

from .conftest import small_random_suite


class TestKnownInstances:
    def test_example_4_3_ghw_2_via_subedges(self):
        """The Section 4 pipeline finds the width-2 GHD that plain
        Check(HD,2) cannot."""
        h0 = example_4_3_hypergraph()
        d = generalized_hypertree_decomposition(h0, 2)
        assert d is not None
        assert is_ghd(h0, d, width=2)

    def test_cycles(self):
        for n in (4, 6, 7):
            assert not check_ghd(cycle(n), 1)
            assert check_ghd(cycle(n), 2)

    def test_cliques(self):
        assert check_ghd(clique(4), 2)
        assert not check_ghd(clique(5), 2)
        assert check_ghd(clique(6), 3)

    def test_acyclic_means_ghw_1(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"]})
        assert check_ghd(h, 1)

    def test_width_search(self):
        width, d = generalized_hypertree_width(triangle_cascade(3))
        assert width == 2
        assert is_ghd(triangle_cascade(3), d, width=2)


class TestMethods:
    @pytest.mark.parametrize("method", ["fixpoint", "bip", "limit"])
    def test_methods_agree_on_example_4_3(self, method):
        h0 = example_4_3_hypergraph()
        assert check_ghd(h0, 2, method=method)
        assert not check_ghd(h0, 1, method=method)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            augmented_hypergraph(cycle(4), 2, method="zzz")

    def test_augmented_contains_original(self):
        h0 = example_4_3_hypergraph()
        aug = augmented_hypergraph(h0, 2)
        assert set(h0.edge_names) <= set(aug.edge_names)
        assert aug.vertices == h0.vertices


class TestAgainstExactOracle:
    def test_random_suite_agreement(self):
        """Check(GHD,k) via fixpoint subedges matches the exact
        elimination oracle on the random CQ suite, for every relevant k."""
        for h in small_random_suite(count=6, seed=23):
            exact, _d = generalized_hypertree_width_exact(h)
            for k in range(1, exact + 2):
                assert check_ghd(h, k) == (k >= exact), (
                    f"{h!r}: disagreement at k={k}, exact ghw={exact}"
                )

    def test_grid_agreement(self):
        g = grid(3, 3)
        exact, _d = generalized_hypertree_width_exact(g)
        assert check_ghd(g, exact)
        assert not check_ghd(g, exact - 1)


class TestWidthOneFastPath:
    def test_acyclic_returns_join_tree(self):
        import random

        from repro.hypergraph.generators import acyclic_hypergraph

        h = acyclic_hypergraph(7, 3, rng=random.Random(2))
        d = generalized_hypertree_decomposition(h, 1)
        assert d is not None and is_ghd(h, d, width=1)
        # Join-tree shape: one node per edge, bags are edges.
        assert len(d) == h.num_edges

    def test_cyclic_returns_none_quickly(self):
        assert generalized_hypertree_decomposition(cycle(9), 1) is None
