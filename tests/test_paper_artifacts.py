"""The pinned Example 4.3 artifacts stay faithful to the paper."""

import pytest

from repro.algorithms import (
    check_ghd,
    fractional_hypertree_width_exact,
    generalized_hypertree_width_exact,
    hypertree_width,
)
from repro.decomposition import is_ghd, is_hd
from repro.hypergraph import intersection_width, multi_intersection_width
from repro.paper_artifacts import (
    example_4_3_hypergraph,
    figure_5_hd,
    figure_6a_ghd,
    figure_6b_ghd,
)


def test_example_4_3_headline_widths():
    """ghw(H0) = 2 but hw(H0) = 3 — the gap motivating Section 4."""
    h0 = example_4_3_hypergraph()
    assert hypertree_width(h0)[0] == 3
    assert generalized_hypertree_width_exact(h0)[0] == 2


def test_example_4_3_shape():
    h0 = example_4_3_hypergraph()
    assert h0.num_vertices == 10
    assert h0.num_edges == 8
    assert h0.edge("e2") == frozenset({"v2", "v3", "v9"})  # Example 4.4


def test_intersection_profile():
    """Example 4.3's closing remark: BIP and 3-BMIP are 1; c>=4 gives 0."""
    h0 = example_4_3_hypergraph()
    assert intersection_width(h0) == 1
    assert multi_intersection_width(h0, 3) == 1
    assert multi_intersection_width(h0, 4) == 0


def test_figure_5_is_a_width_3_hd():
    h0 = example_4_3_hypergraph()
    assert is_hd(h0, figure_5_hd(), width=3)
    assert figure_5_hd().width() == 3.0


def test_figure_6_decompositions_are_width_2_ghds():
    h0 = example_4_3_hypergraph()
    assert is_ghd(h0, figure_6a_ghd(), width=2)
    assert is_ghd(h0, figure_6b_ghd(), width=2)


def test_figure_6_are_not_hds():
    """Both Figure 6 GHDs violate the special condition at u (Ex. 4.4)."""
    h0 = example_4_3_hypergraph()
    assert not is_hd(h0, figure_6a_ghd())
    assert not is_hd(h0, figure_6b_ghd())


def test_fhw_of_h0_is_2():
    """fhw <= ghw = 2; and Check(GHD,1) fails, so 1 < fhw."""
    h0 = example_4_3_hypergraph()
    fhw, _d = fractional_hypertree_width_exact(h0)
    assert fhw <= 2.0 + 1e-9
    assert not check_ghd(h0, 1)
    assert fhw > 1.5  # the cycle structure forbids small fractional bags


def test_uniqueness_pin():
    """The exhaustive reconstruction (see module docstring) is stable:
    e1 and e4 are the two hub-less cycle edges."""
    h0 = example_4_3_hypergraph()
    hubless = [n for n, e in h0.edges.items() if not e & {"v9", "v10"}]
    assert sorted(hubless) == ["e1", "e4"]
