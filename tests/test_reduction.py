"""Tests for the Theorem 3.2 reduction and its LP certificates."""

import pytest

from repro.decomposition import is_fhd, is_ghd
from repro.hardness import CNF, build_reduction, paper_example_formula
from repro.hypergraph import is_connected

SAT_FORMULAS = [
    paper_example_formula(),
    CNF(((1, 2, 3),)),
    CNF(((1, -1, 2), (2, 2, 2))),
]
UNSAT_FORMULAS = [
    CNF(((1, 1, 1), (-1, -1, -1))),
    CNF(((1, 2, 2), (1, -2, -2), (-1, 2, 2), (-1, -2, -2))),
]


class TestConstructionShape:
    def test_example_3_3_sizes(self):
        """Example 3.3: n = 3, m = 2 — A and A' have 18 elements each,
        Q has 21, S has 63."""
        r = build_reduction(paper_example_formula())
        assert len(r.positions) == 18
        assert len(r.q_values) == 21
        assert len(r.set_s) == 63
        assert len(r.set_a) == len(r.set_a_prime) == 18
        assert r.p_min == (1, 1) and r.p_max == (9, 2)

    def test_lexicographic_positions(self):
        r = build_reduction(CNF(((1, 1, 1), (1, 1, 1))))
        assert r.positions[:3] == [(1, 1), (1, 2), (2, 1)]

    def test_hypergraph_connected(self):
        r = build_reduction(paper_example_formula())
        assert is_connected(r.hypergraph)

    def test_restricted_gadget_vertices_unshared(self):
        """Lemma 3.1's premise: R-vertices occur only in gadget edges."""
        r = build_reduction(paper_example_formula())
        h = r.hypergraph
        restricted = {"a2", "b1", "b2", "c1", "c2", "d1", "d2"}
        for name, content in h.edges.items():
            if not name.startswith("g") or name.endswith("p"):
                if not name.startswith("g"):
                    assert not content & restricted, name

    def test_no_edge_covers_all_of_s(self):
        """Definition 3.4 observation: no single edge covers S."""
        r = build_reduction(paper_example_formula())
        for content in r.hypergraph.edges.values():
            assert not r.set_s <= content

    def test_complementary_edges_partition_s(self):
        r = build_reduction(paper_example_formula())
        h = r.hypergraph
        p = r.p_min
        for k in (1, 2, 3):
            e0 = h.edge(r.literal_name(p, k, 0))
            e1 = h.edge(r.literal_name(p, k, 1))
            assert (e0 & r.set_s) | (e1 & r.set_s) == r.set_s
            assert not (e0 & r.set_s) & (e1 & r.set_s)


class TestForwardDirection:
    @pytest.mark.parametrize("formula", SAT_FORMULAS)
    def test_satisfiable_gives_width_2_ghd(self, formula):
        r = build_reduction(formula)
        ghd = r.verify_forward()
        assert ghd is not None
        assert is_ghd(r.hypergraph, ghd, width=2)
        assert is_fhd(r.hypergraph, ghd, width=2)  # GHD ⇒ FHD

    @pytest.mark.parametrize("formula", UNSAT_FORMULAS)
    def test_unsatisfiable_has_no_forward_witness(self, formula):
        r = build_reduction(formula)
        assert r.verify_forward() is None

    def test_table1_rejects_bad_assignment(self):
        r = build_reduction(paper_example_formula())
        # x1=x2=x3 = False falsifies clause 1 (x1 ∨ ¬x2 ∨ x3)? No:
        # ¬x2 is true. Use an assignment violating clause 1:
        # x1=False, x2=True, x3=False.
        with pytest.raises(ValueError, match="does not satisfy"):
            r.table1_ghd([False, True, False])

    def test_ghd_path_shape(self):
        """Figure 2: the GHD is a path with 3 + 1 + |inner| + 1 + 3 nodes."""
        r = build_reduction(paper_example_formula())
        ghd = r.verify_forward()
        assert len(ghd) == 3 + 1 + (len(r.positions) - 1) + 1 + 3
        # Path shape: every node has at most one child.
        assert all(len(ghd.children(n)) <= 1 for n in ghd.node_ids)


class TestCertificates:
    def test_lemma_3_5(self):
        r = build_reduction(paper_example_formula())
        assert r.certify_lemma_3_5()

    def test_lemma_3_6(self):
        r = build_reduction(paper_example_formula())
        assert r.certify_lemma_3_6()
        assert r.certify_lemma_3_6(p=(2, 1))

    def test_claim_infeasibilities(self):
        r = build_reduction(paper_example_formula())
        assert all(r.certify_claim_infeasibilities().values())

    @pytest.mark.parametrize("formula", SAT_FORMULAS + UNSAT_FORMULAS)
    def test_lp_equivalence_tracks_satisfiability(self, formula):
        """The computational Theorem 3.2: LP coverability of the path
        bags ⟺ satisfiability, for sat AND unsat formulas."""
        assert build_reduction(formula).certify_equivalence()

    def test_clause_block_coverable_matches_clause_truth(self):
        r = build_reduction(paper_example_formula())
        # x1=True, x2=False, x3=False satisfies clause 1 via literal 1
        # and clause 2 via ¬x3.
        assignment = [True, False, False]
        assert r.clause_block_coverable(1, assignment)
        assert r.clause_block_coverable(2, assignment)
        # x1=False, x2=True, x3=False falsifies clause 1.
        assert not r.clause_block_coverable(1, [False, True, False])

    def test_z_set(self):
        r = build_reduction(paper_example_formula())
        z = r.z_set([True, False, True])
        assert z == frozenset({"y_1", "yp_2", "y_3"})


class TestLiftedForward:
    def test_satisfiable_lifts_to_width_3(self):
        r = build_reduction(paper_example_formula())
        witness = r.lifted_forward_witness(1)
        assert witness is not None
        assert witness.width() == 3.0
        # Fresh vertices sit in every bag.
        assert all("lift1" in witness.bag(n) for n in witness.node_ids)

    def test_unsatisfiable_has_no_lifted_witness(self):
        r = build_reduction(CNF(((1, 1, 1), (-1, -1, -1))))
        assert r.lifted_forward_witness(1) is None

    def test_larger_lift(self):
        r = build_reduction(CNF(((1, 2, 3),)))
        witness = r.lifted_forward_witness(2)
        assert witness is not None
        assert witness.width() == 4.0
