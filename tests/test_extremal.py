"""Tests for the LP-extremal certificates used by the hardness proofs."""

import pytest

from repro.covers import (
    extremal_cover_value,
    max_edge_weight_in_cover,
    max_weight_difference,
    support_confined,
)
from repro.hardness import gadget_hypergraph
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import clique, cycle


class TestExtremalValue:
    def test_maximize_single_edge(self):
        c4 = cycle(4)
        # Covering {v1, v2}: e1 = {v1,v2} can carry full weight 1.
        value = max_edge_weight_in_cover(c4, ["v1", "v2"], 2.0, "e1")
        assert value == pytest.approx(1.0, abs=1e-6)

    def test_budget_binds(self):
        k4 = clique(4)
        # Covering all of K4 costs exactly 2; no slack for extra weight.
        slack = extremal_cover_value(
            k4, k4.vertices, 2.0, {"e_1_2": 1.0, "e_3_4": 1.0}, maximize=True
        )
        assert slack == pytest.approx(2.0, abs=1e-6)  # forced perfect matching

    def test_infeasible_returns_none(self):
        k6 = clique(6)
        # ρ*(K6) = 3 > 2: the weight-2 polytope over all vertices is empty.
        assert (
            extremal_cover_value(k6, k6.vertices, 2.0, {"e_1_2": 1.0})
            is None
        )

    def test_minimize(self):
        h = Hypergraph({"a": ["x"], "b": ["x"]})
        value = extremal_cover_value(h, ["x"], 5.0, {"a": 1.0}, maximize=False)
        assert value == pytest.approx(0.0, abs=1e-6)

    def test_unknown_edge_rejected(self):
        h = Hypergraph({"a": ["x"]})
        with pytest.raises(KeyError):
            extremal_cover_value(h, ["x"], 1.0, {"zzz": 1.0})


class TestSupportConfinement:
    def test_lemma_3_1_core_confinement(self):
        """Covering the 4-clique {a1,a2,b1,b2} of the gadget with weight
        <= 2 confines the support to E_A ∪ {{b1,b2}} (Lemma 3.1)."""
        g = gadget_hypergraph(m1=["m1a", "m1b"], m2=["m2a"])
        target = ["a1", "a2", "b1", "b2"]
        allowed = ["gA1", "gA2", "gA3", "gA4", "gA5", "gB5"]
        assert support_confined(g, target, 2.0, allowed)
        # Dropping one allowed edge breaks confinement (it can be used).
        assert not support_confined(g, target, 2.0, allowed[:-1])

    def test_everything_allowed_is_confined(self):
        c4 = cycle(4)
        assert support_confined(c4, ["v1"], 2.0, c4.edge_names)

    def test_empty_polytope_vacuously_confined(self):
        k6 = clique(6)
        assert support_confined(k6, k6.vertices, 2.0, [])


class TestWeightDifference:
    def test_forced_equality_on_even_clique(self):
        """Covering K4 with budget exactly 2 forces a perfect matching:
        opposite matching edges both get weight 1 -> difference 0 for
        the pair that must appear together? Actually any single matching
        works, so differences are NOT forced — use a 2-vertex example."""
        h = Hypergraph({"a": ["x", "y"], "b": ["x", "y"]})
        # Budget 1: weights must sum to 1 and each of x,y needs total 1,
        # so any split works: max |γa − γb| = 1.
        diff = max_weight_difference(h, ["x", "y"], 1.0, "a", "b")
        assert diff == pytest.approx(1.0, abs=1e-6)

    def test_unique_cover_gives_zero_difference(self):
        h = Hypergraph({"a": ["x"], "b": ["y"]})
        diff = max_weight_difference(h, ["x", "y"], 2.0, "a", "b")
        assert diff == pytest.approx(0.0, abs=1e-6)

    def test_infeasible_returns_none(self):
        k6 = clique(6)
        assert max_weight_difference(k6, k6.vertices, 2.0, "e_1_2", "e_3_4") is None
