"""Tests for structural properties: degree, rank, iwidth, miwidth, VC."""

from itertools import combinations

import pytest
from hypothesis import given, settings

from repro.hypergraph import (
    Hypergraph,
    degree,
    has_bounded_degree,
    has_bounded_intersection,
    has_bounded_multi_intersection,
    intersection_width,
    is_shattered,
    multi_intersection_width,
    rank,
    vc_dimension,
)
from repro.hypergraph.generators import (
    bounded_vc_unbounded_miwidth_family,
    clique,
    grid,
    unbounded_support_family,
)
from repro.paper_artifacts import example_4_3_hypergraph

from .strategies import hypergraphs


class TestBasics:
    def test_degree(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"], "e3": ["b", "d"]})
        assert degree(h) == 3
        assert has_bounded_degree(h, 3)
        assert not has_bounded_degree(h, 2)

    def test_rank(self):
        h = Hypergraph({"e1": ["a", "b", "c"], "e2": ["c"]})
        assert rank(h) == 3

    def test_clique_properties(self):
        k6 = clique(6)
        assert intersection_width(k6) == 1
        assert degree(k6) == 5
        assert has_bounded_intersection(k6, 1)

    def test_grid_is_1_bip(self):
        assert intersection_width(grid(3, 4)) == 1

    def test_single_edge(self):
        h = Hypergraph({"e": ["a", "b"]})
        assert intersection_width(h) == 0
        assert multi_intersection_width(h, 2) == 0
        assert multi_intersection_width(h, 1) == 2

    def test_miwidth_c1_is_rank(self):
        h = Hypergraph({"e1": ["a", "b", "c"], "e2": ["a", "b"]})
        assert multi_intersection_width(h, 1) == 3

    def test_miwidth_invalid_c(self):
        with pytest.raises(ValueError):
            multi_intersection_width(Hypergraph({"e": ["a"]}), 0)

    def test_example_4_3_intersection_facts(self):
        """Example 4.3: BIP and 3-BMIP of H0 are 1; from c=4 on, 0."""
        h0 = example_4_3_hypergraph()
        assert intersection_width(h0) == 1
        assert multi_intersection_width(h0, 3) == 1
        assert multi_intersection_width(h0, 4) == 0
        assert has_bounded_multi_intersection(h0, 4, 0)


class TestVCDimension:
    def test_single_edge_vc_1(self):
        # {a,b} shatters {a}: traces {∅?}... a single edge shatters any
        # single vertex only if some edge misses it — not here, so vc
        # counts sets where all subsets appear: {a} needs traces {} and
        # {a}; trace {} unavailable => vc = 0.
        h = Hypergraph({"e": ["a", "b"]})
        assert vc_dimension(h) == 0

    def test_two_disjoint_edges(self):
        h = Hypergraph({"e1": ["a"], "e2": ["b"]})
        # {a}: traces {a} (e1) and ∅ (e2) => shattered; {a,b} needs 4
        # traces but only 2 edges: impossible.
        assert vc_dimension(h) == 1

    def test_clique_vc_2(self):
        assert vc_dimension(clique(5)) == 2

    def test_lemma_6_24_family_vc_below_2(self):
        for n in (4, 6, 8):
            assert vc_dimension(bounded_vc_unbounded_miwidth_family(n)) == 1

    def test_lemma_6_24_family_unbounded_miwidth(self):
        for n, c in ((6, 2), (6, 3), (8, 4)):
            h = bounded_vc_unbounded_miwidth_family(n)
            assert multi_intersection_width(h, c) >= n - c

    def test_upper_bound_truncates(self):
        assert vc_dimension(clique(6), upper_bound=1) == 1

    def test_is_shattered_explicit(self):
        h = Hypergraph(
            {"e0": ["z"], "e1": ["a"], "e2": ["b"], "e3": ["a", "b"]}
        )
        assert is_shattered(h, frozenset({"a", "b"}))
        assert vc_dimension(h) == 2


@given(hypergraphs(max_vertices=6, max_edges=5))
@settings(max_examples=30, deadline=None)
def test_miwidth_matches_bruteforce(h: Hypergraph):
    """The pruned search equals brute-force enumeration for c = 2, 3."""
    edge_sets = list(h.edges.values())
    for c in (2, 3):
        if len(edge_sets) < c:
            expected = 0
        else:
            expected = max(
                (
                    len(frozenset.intersection(*combo))
                    for combo in combinations(edge_sets, c)
                ),
                default=0,
            )
        assert multi_intersection_width(h, c) == expected


@given(hypergraphs(max_vertices=6, max_edges=6))
@settings(max_examples=25, deadline=None)
def test_vc_dimension_lemma_6_24_inequality(h: Hypergraph):
    """Lemma 6.24 direction: c-miwidth <= i implies vc <= c + i (c = 2)."""
    i = multi_intersection_width(h, 2)
    assert vc_dimension(h) <= 2 + i


@given(hypergraphs(max_vertices=7, max_edges=6))
@settings(max_examples=30, deadline=None)
def test_degree_of_unbounded_support_family_is_small(h: Hypergraph):
    """Sauer-Shelah sanity: 2^vc <= |E|+1 (the trace-count cap)."""
    assert 2 ** vc_dimension(h) <= h.num_edges + 1


def test_unbounded_support_family_iwidth_1():
    for n in (3, 5, 8):
        assert intersection_width(unbounded_support_family(n)) == 1
