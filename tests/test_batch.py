"""Tests for batched multi-instance serving (``repro.pipeline.batch``).

The headline invariants: every batched answer equals the corresponding
single-instance ``WidthSolver`` answer (serial and parallel, thread and
process executors), and failures are strictly per-request — a malformed
instance resolves its own handle with an error and never poisons
sibling futures.
"""

import pytest

from repro.covers import EPS
from repro.decomposition import is_fhd, is_ghd, is_hd
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    clique,
    cycle,
    grid,
    triangle_cascade,
)
from repro.pipeline import (
    BATCH_KINDS,
    BatchRequest,
    BatchScheduler,
    WidthSolver,
    last_batch_stats,
    solve_many,
)


class TestRequestNormalization:
    def test_accepted_shapes(self):
        h = cycle(4)
        assert BatchRequest.of(h).kind == "ghw"
        assert BatchRequest.of((h, "fhw")).kind == "fhw"
        req = BatchRequest.of((h, "check-ghd", {"k": 2}))
        assert req.params == {"k": 2}
        req = BatchRequest.of({"hypergraph": h, "kind": "hw", "label": "x"})
        assert req.label == "x" and req.name == "x"
        assert BatchRequest.of(req) is req

    def test_rejected_shapes(self):
        with pytest.raises(TypeError, match="batch request"):
            BatchRequest.of(42)
        with pytest.raises(TypeError, match="batch request"):
            BatchRequest.of(())

    def test_name_falls_back_to_hypergraph_then_kind(self):
        h = cycle(4)
        assert BatchRequest(h, "ghw").name == h.name
        assert BatchRequest(Hypergraph({"e": ["a"]}), "fhw").name == "fhw"


class TestEmptyAndSingle:
    def test_empty_batch(self):
        assert solve_many([]) == []
        stats = last_batch_stats()
        assert stats.requests == 0
        assert stats.tasks_run == 0
        assert stats.failures == 0

    def test_single_instance_equals_widthsolver(self):
        h = triangle_cascade(3)
        (result,) = solve_many([(h, "ghw")])
        width, decomposition = result.unwrap()
        solo_width, _d = WidthSolver(h).generalized_hypertree_width()
        assert width == solo_width == 2
        assert is_ghd(h, decomposition, width=width)

    def test_bare_hypergraph_defaults_to_ghw(self):
        (result,) = solve_many([cycle(6)])
        assert result.request.kind == "ghw"
        assert result.value[0] == 2


class TestMixedMeasures:
    def test_hw_ghw_fhw_in_one_batch(self):
        instances = {
            "hw": triangle_cascade(3),
            "ghw": cycle(6),
            "fhw": clique(5),
        }
        results = solve_many(
            [(h, kind) for kind, h in instances.items()], jobs=2
        )
        by_kind = {r.request.kind: r for r in results}
        assert all(r.ok for r in results)

        hw, hd = by_kind["hw"].value
        assert hw == WidthSolver(instances["hw"]).hypertree_width()[0]
        assert is_hd(instances["hw"], hd, width=hw)

        ghw, ghd = by_kind["ghw"].value
        solo = WidthSolver(instances["ghw"]).generalized_hypertree_width()
        assert ghw == solo[0]
        assert is_ghd(instances["ghw"], ghd, width=ghw)

        fhw, fhd = by_kind["fhw"].value
        solo = WidthSolver(instances["fhw"]).fractional_hypertree_width_exact()
        assert fhw == pytest.approx(solo[0])
        assert is_fhd(instances["fhw"], fhd, width=fhw + EPS)

    def test_all_width_kinds_resolve(self):
        h = triangle_cascade(2)
        results = solve_many(
            [
                (h, "hw"),
                (h, "ghw"),
                (h, "ghw-exact"),
                (h, "fhw"),
                (h, "bounds"),
                (h, "check-ghd", {"k": 2}),
                (h, "check-ghd", {"k": 1}),
            ]
        )
        assert all(r.ok for r in results)
        assert results[0].value[0] == 2
        assert results[1].value[0] == 2
        assert results[2].value[0] == 2
        assert results[3].value[0] == pytest.approx(1.5)
        lower, upper, _w = results[4].value
        assert lower <= upper
        assert results[5].value is not None  # accept at k=2
        assert results[6].value is None  # reject at k=1

    def test_parallel_matches_serial(self):
        requests = [
            (cycle(6), "ghw"),
            (triangle_cascade(3), "hw"),
            (clique(5), "fhw"),
            (grid(2, 3), "ghw"),
        ]
        serial = solve_many(requests)
        threaded = solve_many(requests, jobs=3)
        for a, b in zip(serial, threaded):
            assert a.ok and b.ok
            assert a.value[0] == pytest.approx(b.value[0])

    def test_process_executor(self):
        requests = [(triangle_cascade(2), "fhw"), (cycle(4), "ghw")]
        results = solve_many(requests, jobs=2, executor="process")
        assert results[0].value[0] == pytest.approx(1.5)
        assert results[1].value[0] == 2


class TestFailureIsolation:
    def test_bad_kind_does_not_poison_siblings(self):
        h = cycle(6)
        results = solve_many([(h, "zzz"), (h, "ghw"), (h, "fhw")], jobs=2)
        assert not results[0].ok
        assert isinstance(results[0].error, ValueError)
        assert "kind" in str(results[0].error)
        assert results[1].ok and results[1].value[0] == 2
        assert results[2].ok and results[2].value[0] == pytest.approx(2.0)

    def test_non_hypergraph_instance(self):
        results = solve_many(["not a hypergraph", (cycle(4), "ghw")])
        assert isinstance(results[0].error, TypeError)
        assert results[1].ok

    def test_malformed_spec_resolves_immediately(self):
        scheduler = BatchScheduler()
        handle = scheduler.submit(1234)
        assert handle.done and not handle.ok
        good = scheduler.submit((cycle(4), "ghw"))
        scheduler.run()
        assert good.ok and good.value[0] == 2
        assert scheduler.last_stats.failures == 1

    def test_cap_error_is_per_request(self):
        results = solve_many(
            [
                (clique(6), "hw", {"kmax": 2}),
                (cycle(6), "ghw"),
            ],
            jobs=2,
        )
        assert isinstance(results[0].error, ValueError)
        assert "cap" in str(results[0].error)
        assert results[1].ok

    def test_check_without_k_fails_that_request_only(self):
        results = solve_many([(cycle(4), "check-ghd"), (cycle(4), "ghw")])
        assert isinstance(results[0].error, ValueError)
        assert "k" in str(results[0].error)
        assert results[1].ok

    def test_unwrap_reraises(self):
        (result,) = solve_many([(cycle(4), "zzz")])
        with pytest.raises(ValueError, match="kind"):
            result.unwrap()

    def test_unresolved_unwrap_raises(self):
        scheduler = BatchScheduler()
        handle = scheduler.submit((cycle(4), "ghw"))
        with pytest.raises(RuntimeError, match="not resolved"):
            handle.unwrap()


class TestSchedulerBehaviour:
    def test_stats_counters(self):
        h = triangle_cascade(3)
        results = solve_many(
            [(h, "ghw"), (cycle(6), "ghw")], jobs=2, bounds="none"
        )
        assert all(r.ok for r in results)
        stats = last_batch_stats()
        assert stats.requests == 2
        assert stats.jobs == 2
        assert stats.blocks == 4  # 3 triangle blocks + 1 cycle block
        assert stats.tasks_run >= stats.blocks
        assert stats.kinds == {"ghw": 2}
        assert stats.total_seconds >= stats.prepare_seconds
        assert 0.0 <= stats.hit_rate <= 1.0
        assert stats.requests_per_second > 0
        payload = stats.as_dict()
        assert payload["requests"] == 2
        assert payload["kinds"] == {"ghw": 2}

    def test_cancelled_tasks_counted_at_most_once(self):
        # Regression: a rejecting check instance used to re-count its
        # never-submitted sibling blocks every time another of its
        # tasks completed.  For a pure check batch, executed + avoided
        # tasks can never exceed one per block.
        h = triangle_cascade(6)
        (result,) = solve_many(
            [(h, "check-ghd", {"k": 1})], jobs=2, bounds="none"
        )
        assert result.ok and result.value is None
        stats = last_batch_stats()
        assert stats.blocks == 6
        assert stats.tasks_cancelled >= 1
        assert stats.tasks_run + stats.tasks_cancelled <= stats.blocks

    def test_no_speculation_above_accepted_k(self):
        # Regression: speculative checks used to keep climbing to the
        # cap (|E| = 15 for K6) even after some k was accepted, although
        # monotonicity makes every check above an accepted k useless.
        h = clique(6)  # single block, ghw = 3
        (result,) = solve_many([(h, "ghw")], jobs=3)
        assert result.ok and result.value[0] == 3
        stats = last_batch_stats()
        # k = 1..3 are required; a few in-flight speculations may slip
        # through before the acceptance lands, but never the full climb.
        assert stats.tasks_run <= 3 + 3

    def test_widthsolver_speculation_also_bounded(self):
        solver = WidthSolver(clique(6), jobs=3)
        width, _d = solver.generalized_hypertree_width()
        assert width == 3
        assert solver.last_stats.tasks_run <= 3 + 3

    def test_check_rejection_cancels_siblings(self):
        # triangles(3) splits into 3 blocks, each of hw 2: a k=1 check
        # rejects on the first block and skips/cancels the rest.
        h = triangle_cascade(3)
        (result,) = solve_many([(h, "check-ghd", {"k": 1})], bounds="none")
        assert result.ok and result.value is None
        stats = last_batch_stats()
        assert stats.tasks_cancelled >= 1
        assert stats.tasks_run < stats.blocks + 1

    def test_warm_cache_domain_shared_across_instances(self):
        from repro import engine

        # Two equal hypergraphs in one batch: the second's cover
        # queries hit the warm domain of the first.
        engine.clear_context_registry()
        solve_many([(clique(5), "fhw"), (clique(5), "fhw")])
        stats = last_batch_stats()
        assert stats.cache_hits > 0
        assert stats.hit_rate > 0.3

    def test_preprocess_none(self):
        h = triangle_cascade(2)
        (result,) = solve_many([(h, "ghw")], preprocess="none")
        assert result.value[0] == 2
        assert last_batch_stats().blocks == 1

    def test_backend_override_restored(self):
        from repro import engine

        previous = engine.engine_config().backend
        (result,) = solve_many([(cycle(4), "fhw")], backend="purepython")
        assert result.ok
        assert engine.engine_config().backend == previous

    def test_bad_configuration_raises(self):
        with pytest.raises(ValueError, match="preprocess"):
            solve_many([], preprocess="zzz")
        with pytest.raises(ValueError, match="executor"):
            solve_many([], executor="zzz")
        with pytest.raises(ValueError, match="backend"):
            solve_many([(cycle(4), "ghw")], backend="zzz")

    def test_batch_kinds_constant(self):
        assert set(BATCH_KINDS) == {
            "hw",
            "ghw",
            "ghw-exact",
            "fhw",
            "bounds",
            "check-hd",
            "check-ghd",
            "check-fhd-bd",
        }
