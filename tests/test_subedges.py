"""Tests for the subedge generators, the ⋃⋂-tree and the intersection
forest (Algorithms 1 and 2)."""

import pytest

from repro.algorithms import (
    bip_subedges,
    critical_path,
    fhd_subedges,
    forest_fringe,
    ghd_subedges,
    intersection_forest,
    limit_subedges,
    union_intersection_tree,
)
from repro.hypergraph import Hypergraph, degree
from repro.hypergraph.generators import clique, cycle
from repro.paper_artifacts import example_4_3_hypergraph, figure_6b_ghd


class TestFixpointGenerator:
    def test_contains_pairwise_intersections(self):
        h0 = example_4_3_hypergraph()
        subs = ghd_subedges(h0, 2)
        contents = set(subs.values())
        # Example 4.12's subedge e2' = {v3, v9} = (e2∩e3) ∪ (e2∩e7).
        assert frozenset({"v3", "v9"}) in contents

    def test_no_full_edges_duplicated(self):
        h = cycle(5)
        subs = ghd_subedges(h, 2)
        assert not set(subs.values()) & set(h.edges.values())

    def test_cap_raises(self):
        # A hypergraph engineered to have many reachable sets: one big
        # edge intersected with many overlapping ones.
        big = [f"v{i}" for i in range(10)]
        edges = {"big": big}
        for i in range(8):
            edges[f"o{i}"] = big[i : i + 3]
        h = Hypergraph(edges)
        with pytest.raises(RuntimeError, match="exceeded"):
            ghd_subedges(h, 3, max_sets=10)

    def test_bip_closed_form_superset_check(self):
        """f(H,k) of Thm 4.15 contains every pairwise-derived subedge the
        fixpoint finds in one step (depth-1 agreement)."""
        h0 = example_4_3_hypergraph()
        bip = set(bip_subedges(h0, 2).values())
        for e in h0.edges.values():
            for f in h0.edges.values():
                if e != f and e & f:
                    assert (e & f) in bip or (e & f) in set(
                        h0.edges.values()
                    )

    def test_bip_size_bound(self):
        """|f(H,k)| <= m^{k+1} · 2^{k·i} (Theorem 4.15)."""
        h0 = example_4_3_hypergraph()
        m, k, i = h0.num_edges, 2, 1
        assert len(bip_subedges(h0, k)) <= m ** (k + 1) * 2 ** (k * i)

    def test_limit_subedges_powerset(self):
        h = Hypergraph({"e": ["a", "b", "c"]})
        subs = limit_subedges(h)
        assert len(subs) == 2**3 - 2  # all non-empty proper subsets

    def test_limit_guard(self):
        h = Hypergraph({"e": [f"v{i}" for i in range(20)]})
        with pytest.raises(RuntimeError, match="max_edge_size"):
            limit_subedges(h)

    def test_fhd_subedges_under_bdp(self):
        c6 = cycle(6)
        subs = fhd_subedges(c6, 2, d=degree(c6))
        # Degree 2: classes are edges and their pairwise intersections
        # (single vertices); subedges include the singletons.
        assert frozenset({"v1"}) in set(subs.values())


class TestUnionIntersectionTree:
    def test_figure_7_verbatim(self):
        """Example 4.12 / Figure 7: critp(u, e2) = (u, u1, u*) with
        λ_{u1} = {e3, e7}, λ_{u*} = {e2, e8}; the leaves read
        (e2∩e3) ∪ (e2∩e7) = {v3, v9}."""
        h0 = example_4_3_hypergraph()
        tree = union_intersection_tree(
            h0, "e2", [frozenset({"e3", "e7"}), frozenset({"e2", "e8"})]
        )
        # Level 1 splits into e2∩e3 and e2∩e7; level 2 passes (e2 ∈ λ).
        leaves = tree.leaves()
        assert sorted(sorted(leaf.label) for leaf in leaves) == [
            ["e2", "e3"],
            ["e2", "e7"],
        ]
        union = frozenset().union(
            *(leaf.intersection(h0) for leaf in leaves)
        )
        assert union == frozenset({"v3", "v9"})
        assert tree.depth() == 1
        assert tree.size() == 3  # Figure 7 has exactly 3 nodes

    def test_matches_lemma_4_9_on_figure_6b(self):
        """e2 ∩ B_u = e2 ∩ B(λ_{u1}) ∩ B(λ_{u2}) on the real GHD."""
        h0 = example_4_3_hypergraph()
        d = figure_6b_ghd()
        path = critical_path(h0, d, "u0", "e2")
        assert path == ["u0", "u1", "u2"]
        covers = [frozenset(d.cover(nid).support) for nid in path[1:]]
        tree = union_intersection_tree(h0, "e2", covers)
        union = frozenset().union(
            *(leaf.intersection(h0) for leaf in tree.leaves())
        )
        assert union == h0.edge("e2") & d.bag("u0")

    def test_critical_path_unknown_edge_coverage(self):
        h = Hypergraph({"e": ["a", "b"]})
        from repro.decomposition import Decomposition

        d = Decomposition.single_node(["a"], {"e": 1.0})
        with pytest.raises(ValueError, match="covers"):
            critical_path(h, d, "root", "e")


class TestIntersectionForest:
    def test_lemma_5_15_facts(self):
        """Fact 1 (children add an edge), Fact 2 (depth <= d-1)."""
        c6 = cycle(6)
        d = degree(c6)
        xi = [
            frozenset({"e1", "e2"}),
            frozenset({"e2", "e3"}),
            frozenset({"e3", "e4"}),
        ]
        roots = intersection_forest(c6, xi)
        assert roots
        for root in roots:
            assert root.depth() <= d - 1
            stack = [root]
            while stack:
                node = stack.pop()
                for child in node.children:
                    assert node.edges < child.edges  # Fact 1
                    stack.append(child)

    def test_fringe_nonempty_for_consistent_sequence(self):
        c6 = cycle(6)
        xi = [frozenset({"e1", "e2"})] * 2
        roots = intersection_forest(c6, xi)
        fringe = forest_fringe(roots, max_level=2)
        # Every class of level 1 passes level 2 unchanged.
        assert set(fringe) >= {frozenset({"v2"})}

    def test_empty_sequence(self):
        assert intersection_forest(cycle(4), []) == []

    def test_fail_marks_dead_ends(self):
        # Disjoint groups: every level-1 class dies at level 2.
        h = Hypergraph({"a": ["x", "y"], "b": ["z", "w"]})
        roots = intersection_forest(h, [frozenset({"a"}), frozenset({"b"})])
        assert all(
            node.mark == "fail"
            for root in roots
            for node in root.all_nodes()
            if not node.children
        )
        assert forest_fringe(roots, 2) == []


def test_k4_subedge_augmented_hw_equals_ghw():
    """hw(H ∪ f⁺(H)) = ghw(H) [3, 28] on small instances."""
    from repro.algorithms import hypertree_width

    for h in (clique(4), cycle(5), example_4_3_hypergraph()):
        augmented = h.with_edges(limit_subedges(h))
        from repro.algorithms import generalized_hypertree_width_exact

        ghw, _d = generalized_hypertree_width_exact(h)
        hw_aug, _d2 = hypertree_width(augmented, kmax=ghw + 1)
        assert hw_aug == ghw


class TestBMIPGenerator:
    def test_contains_figure_7_subedge(self):
        from repro.algorithms import bmip_subedges
        from repro.paper_artifacts import example_4_3_hypergraph

        subs = bmip_subedges(example_4_3_hypergraph(), 2, c=3)
        assert frozenset({"v3", "v9"}) in set(subs.values())

    def test_invalid_c(self):
        from repro.algorithms import bmip_subedges

        with pytest.raises(ValueError):
            bmip_subedges(cycle(4), 2, c=1)

    def test_superset_of_depth_limited_fixpoint(self):
        """Through the truncation powerset, the BMIP set covers every
        subedge the fixpoint finds within depth c - 1 on 1-BIP inputs."""
        from repro.algorithms import bmip_subedges
        from repro.paper_artifacts import example_4_3_hypergraph

        h0 = example_4_3_hypergraph()
        fixpoint = set(ghd_subedges(h0, 2).values())
        bmip = set(bmip_subedges(h0, 2, c=3).values())
        assert fixpoint <= bmip

    def test_check_ghd_with_bmip_method(self):
        from repro.algorithms import check_ghd
        from repro.paper_artifacts import example_4_3_hypergraph

        assert check_ghd(example_4_3_hypergraph(), 2, method="bmip", c=3)
