"""Unit tests for the core Hypergraph data structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph

from .strategies import hypergraphs


class TestConstruction:
    def test_named_edges(self):
        h = Hypergraph({"ab": ["a", "b"], "bc": ["b", "c"]})
        assert h.edge("ab") == frozenset({"a", "b"})
        assert h.num_edges == 2
        assert h.num_vertices == 3

    def test_autonamed_edges(self):
        h = Hypergraph([["a", "b"], ["b", "c"]])
        assert h.edge_names == ("e1", "e2")

    def test_empty_edge_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Hypergraph({"e": []})

    def test_duplicate_contents_allowed(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["a", "b"]})
        assert h.num_edges == 2

    def test_declared_isolated_vertex(self):
        h = Hypergraph({"e": ["a"]}, vertices=["z"])
        assert "z" in h
        assert h.isolated_vertices() == frozenset({"z"})

    def test_size_counts_vertices_and_edge_slots(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c", "d"]})
        assert h.size == 4 + 2 + 3

    def test_equality_and_hash(self):
        h1 = Hypergraph({"e": ["a", "b"]})
        h2 = Hypergraph({"e": ["b", "a"]})
        assert h1 == h2
        assert hash(h1) == hash(h2)

    def test_repr_mentions_counts(self):
        h = Hypergraph({"e": ["a", "b"]}, name="demo")
        assert "demo" in repr(h)
        assert "|V|=2" in repr(h)


class TestIncidence:
    def test_edges_of(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"]})
        assert h.edges_of("b") == frozenset({"e1", "e2"})
        assert h.edges_of("a") == frozenset({"e1"})

    def test_incident_edges(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"], "e3": ["d", "e"]})
        assert h.incident_edges(["a", "c"]) == frozenset({"e1", "e2"})

    def test_vertices_of(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"]})
        assert h.vertices_of(["e1", "e2"]) == frozenset({"a", "b", "c"})

    def test_edge_type(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"]})
        assert h.edge_type("b") == frozenset({"e1", "e2"})


class TestDerived:
    def test_induced_drops_empty_intersections(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["c", "d"]})
        sub = h.induced(["a", "b"])
        assert sub.edge_names == ("e1",)
        assert sub.vertices == frozenset({"a", "b"})

    def test_induced_unknown_vertex_rejected(self):
        h = Hypergraph({"e1": ["a", "b"]})
        with pytest.raises(ValueError, match="not in hypergraph"):
            h.induced(["a", "zzz"])

    def test_restrict_edges(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"]})
        sub = h.restrict_edges(["e2"])
        assert sub.vertices == frozenset({"b", "c"})

    def test_restrict_unknown_edge(self):
        h = Hypergraph({"e1": ["a", "b"]})
        with pytest.raises(KeyError):
            h.restrict_edges(["nope"])

    def test_with_edges_adds(self):
        h = Hypergraph({"e1": ["a", "b"]})
        h2 = h.with_edges({"x": ["a"]})
        assert h2.num_edges == 2
        assert h.num_edges == 1  # original untouched

    def test_with_edges_clash_same_content_ok(self):
        h = Hypergraph({"e1": ["a", "b"]})
        assert h.with_edges({"e1": ["b", "a"]}).num_edges == 1

    def test_with_edges_clash_different_content_rejected(self):
        h = Hypergraph({"e1": ["a", "b"]})
        with pytest.raises(ValueError, match="clash"):
            h.with_edges({"e1": ["a"]})

    def test_primal_graph_makes_cliques(self):
        h = Hypergraph({"e": ["a", "b", "c"]})
        adj = h.primal_graph()
        assert adj["a"] == frozenset({"b", "c"})

    def test_adjacent_and_clique(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"], "e3": ["a", "c"]})
        assert h.adjacent("a", "b")
        assert not h.adjacent("a", "zzz") if "zzz" in h else True
        assert h.is_clique(["a", "b", "c"])
        assert h.is_clique(["a"])
        assert not h.is_clique(["a", "b", "c", "d"]) if "d" in h else True


class TestCaching:
    def test_edges_view_is_zero_copy_and_read_only(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"]})
        view = h.edges
        assert view is h.edges  # same object on every access, no copying
        assert dict(view) == {
            "e1": frozenset({"a", "b"}),
            "e2": frozenset({"b", "c"}),
        }
        with pytest.raises(TypeError):
            view["e3"] = frozenset({"x"})

    def test_primal_graph_is_cached(self):
        h = Hypergraph({"e": ["a", "b", "c"]})
        assert h.primal_graph() is h.primal_graph()

    def test_hash_is_cached_and_stable(self):
        h = Hypergraph({"e": ["a", "b"]})
        first = hash(h)
        assert hash(h) == first
        assert hash(Hypergraph({"e": ["b", "a"]})) == first

    def test_is_clique_not_confused_by_nonedges(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["c", "d"]})
        assert not h.is_clique(["a", "c"])
        assert h.is_clique(["a", "b"])

    def test_pickle_and_deepcopy_roundtrip(self):
        import copy
        import pickle

        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"]}, name="demo")
        h.primal_graph()  # populate the derived caches first
        for clone in (pickle.loads(pickle.dumps(h)), copy.deepcopy(h)):
            assert clone == h
            assert clone.name == "demo"
            assert clone.edges == h.edges
            assert clone.primal_graph() == h.primal_graph()


class TestCanonicalHash:
    def test_equal_hypergraphs_share_a_digest(self):
        a = Hypergraph({"e": ["a", "b"], "f": ["b", "c"]}, name="left")
        b = Hypergraph({"f": ["c", "b"], "e": ["b", "a"]}, name="right")
        assert a == b
        assert a.canonical_hash() == b.canonical_hash()
        assert a.canonical_hash() is a.canonical_hash()  # cached

    def test_vertex_types_do_not_collide(self):
        assert (
            Hypergraph({"e": ["1"]}).canonical_hash()
            != Hypergraph({"e": [1]}).canonical_hash()
        )

    def test_edge_names_cannot_forge_structure(self):
        """Regression: the digest encoding must be injective.

        A previous ad-hoc join with ';', '(', ')' and ',' let an edge
        *name* containing those delimiters reproduce another
        hypergraph's byte stream — these two collided, and the shared
        digest leaked one instance's store verdicts to the other.
        """
        a = Hypergraph({"p": ["a"], "q": ["b"]})
        b = Hypergraph({"p(s:a);q": ["b"]})
        assert a != b
        assert a.canonical_hash() != b.canonical_hash()
        # More delimiter-injection shapes: commas and parens in names
        # or string vertices must not re-bracket the encoding.
        pairs = [
            (
                Hypergraph({"e": ["a,b"]}),
                Hypergraph({"e": ["a", "b"]}),
            ),
            (
                Hypergraph({'e"]],["f': ["a"]}),
                Hypergraph({"e": ["a"], "f": ["a"]}),
            ),
        ]
        for left, right in pairs:
            assert left != right
            assert left.canonical_hash() != right.canonical_hash()

    def test_isolated_vertices_are_covered(self):
        plain = Hypergraph({"e": ["a"]})
        declared = Hypergraph({"e": ["a"]}, vertices=["z"])
        assert plain.canonical_hash() != declared.canonical_hash()


@given(hypergraphs(), hypergraphs())
@settings(max_examples=60, deadline=None)
def test_canonical_hash_separates_distinct_instances(a, b):
    """Digest equality must track hypergraph equality both ways."""
    assert (a == b) == (a.canonical_hash() == b.canonical_hash())


@given(hypergraphs())
@settings(max_examples=40, deadline=None)
def test_incidence_is_consistent(h: Hypergraph):
    """edges_of/vertices_of are inverse views of the same incidence."""
    for v in h.vertices:
        for e in h.edges_of(v):
            assert v in h.edge(e)
    for e in h.edge_names:
        for v in h.edge(e):
            assert e in h.edges_of(v)


@given(hypergraphs(), st.randoms())
@settings(max_examples=30, deadline=None)
def test_induced_is_monotone(h: Hypergraph, rng):
    """The induced subhypergraph keeps exactly the requested vertices."""
    subset = frozenset(
        v for v in h.vertices if rng.random() < 0.6
    )
    covered = {v for v in subset if any(h.edge(e) & subset for e in h.edges_of(v))}
    sub = h.induced(subset)
    assert sub.vertices == frozenset(covered)
    for e in sub.edge_names:
        assert sub.edge(e) == h.edge(e) & subset
