"""Differential testing: the SAT engine against branch-and-bound.

The repository now has two exact decision procedures of independent
design for every Check(X, k) problem — the engine-backed
branch-and-bound searches and the CNF elimination-ordering encodings of
:mod:`repro.sat`.  This suite is the proof obligation that they agree:

* property-based parity on random hypergraphs for hw / ghw / fhw, on
  both sides of the threshold (accept at the true width, reject just
  below it);
* fixed-seed parity over the HyperBench-like generator corpus of E15;
* ``solver="portfolio"`` answers identical to ``"bb"`` alone;
* every witness of *either* engine re-validated through
  :mod:`repro.decomposition.validation` against the paper definitions;
* the bundled CDCL core itself checked against the independent DPLL of
  :meth:`repro.hardness.CNF.is_satisfiable` on random 3SAT formulas.

Because both engines are exact, any disagreement is a bug by
construction — there is no tolerance to hide behind (fhw alone uses
the engine-wide LP epsilon).
"""

import pytest
from hypothesis import given, settings

from repro.algorithms import (
    fractional_hypertree_width_exact,
    generalized_hypertree_width_exact,
    hypertree_width,
)
from repro.covers import EPS
from repro.decomposition import is_fhd, is_ghd, is_hd
from repro.hardness import CNF
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import hyperbench_like_suite
from repro.pipeline import solve_width
from repro.sat import (
    sat_fractional_hypertree_decomposition,
    sat_generalized_hypertree_decomposition,
    sat_hypertree_decomposition,
    solve_cnf,
)

from .strategies import cnf_formulas, hypergraphs


# ----------------------------------------------------------------------
# Property-based parity: accept at the true width, reject below it,
# witnesses of both engines validate against the paper definitions.
# ----------------------------------------------------------------------
@given(hypergraphs(max_vertices=6, max_edges=6))
@settings(max_examples=25, deadline=None)
def test_sat_vs_bb_hw(h: Hypergraph):
    width, bb_witness = hypertree_width(h)
    assert is_hd(h, bb_witness, width=width)
    sat_witness = sat_hypertree_decomposition(h, width)
    assert sat_witness is not None
    assert is_hd(h, sat_witness, width=width)
    if width > 1:
        assert sat_hypertree_decomposition(h, width - 1) is None


@given(hypergraphs(max_vertices=6, max_edges=6))
@settings(max_examples=25, deadline=None)
def test_sat_vs_bb_ghw(h: Hypergraph):
    width, bb_witness = generalized_hypertree_width_exact(h)
    assert is_ghd(h, bb_witness, width=width)
    sat_witness = sat_generalized_hypertree_decomposition(h, width)
    assert sat_witness is not None
    assert is_ghd(h, sat_witness, width=width)
    if width > 1:
        assert sat_generalized_hypertree_decomposition(h, width - 1) is None


@given(hypergraphs(max_vertices=6, max_edges=6))
@settings(max_examples=20, deadline=None)
def test_sat_vs_bb_fhw(h: Hypergraph):
    width, bb_witness = fractional_hypertree_width_exact(h)
    assert is_fhd(h, bb_witness, width=width + EPS)
    sat_witness = sat_fractional_hypertree_decomposition(h, width)
    assert sat_witness is not None
    assert is_fhd(h, sat_witness, width=width + EPS)
    if width > 1 + 1e-6:
        assert sat_fractional_hypertree_decomposition(h, width - 1e-4) is None


# ----------------------------------------------------------------------
# Fixed-seed corpus parity: the E15 HyperBench-like generator, solved
# per solver mode through the very pipeline users call.
# ----------------------------------------------------------------------
def _corpus():
    suite = hyperbench_like_suite(seed=7, n_cq=8, n_csp=4)
    return [h for h in suite if h.num_vertices <= 12][:10]


@pytest.mark.parametrize("kind", ["hw", "ghw"])
def test_corpus_parity_all_modes(kind):
    for h in _corpus():
        widths = {}
        witnesses = {}
        for mode in ("bb", "sat", "portfolio"):
            widths[mode], witnesses[mode] = solve_width(
                h, kind=kind, solver=mode
            )
        assert widths["bb"] == widths["sat"] == widths["portfolio"], (
            f"{kind} disagreement on {h.name}: {widths}"
        )
        check = is_hd if kind == "hw" else is_ghd
        for mode, witness in witnesses.items():
            assert check(h, witness, width=widths[mode]), (
                f"{kind} witness of {mode} invalid on {h.name}"
            )


def test_corpus_reject_side_parity():
    """Below the true width both engines must say no — on the corpus,
    not just on hypothesis-sized instances."""
    for h in _corpus():
        width, _witness = solve_width(h, kind="ghw")
        if width <= 1:
            continue
        assert sat_generalized_hypertree_decomposition(h, width - 1) is None


# ----------------------------------------------------------------------
# The CDCL core against the independent DPLL used by the Theorem 3.2
# reduction machinery.
# ----------------------------------------------------------------------
@given(cnf_formulas(max_vars=6, max_clauses=12))
@settings(max_examples=60, deadline=None)
def test_cdcl_vs_reference_dpll(formula: CNF):
    model = solve_cnf(list(formula.clauses), formula.num_variables)
    assert (model is not None) == formula.is_satisfiable()
    if model is not None:
        for clause in formula.clauses:
            assert any(
                (lit > 0) == (abs(lit) in model) for lit in clause
            ), f"model violates clause {clause}"
