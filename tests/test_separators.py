"""Balanced separators as sound lower bounds."""

import pytest
from hypothesis import given, settings

from repro.algorithms import (
    balanced_separator,
    generalized_hypertree_width_exact,
    ghw_balance_lower_bound,
    is_balanced_separator,
)
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import clique, cycle, grid

from .strategies import hypergraphs


class TestIsBalanced:
    def test_middle_vertex_of_path(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"]})
        assert is_balanced_separator(h, frozenset({"b"}))

    def test_endpoint_is_not(self):
        h = Hypergraph(
            {"e1": ["a", "b"], "e2": ["b", "c"], "e3": ["c", "d"]}
        )
        assert not is_balanced_separator(h, frozenset({"a"}))

    def test_empty_separator_of_connected(self):
        assert not is_balanced_separator(cycle(6), frozenset())

    def test_custom_balance(self):
        c = cycle(8)
        sep = frozenset({"v1", "v5"})
        assert is_balanced_separator(c, sep, balance=0.5)
        assert not is_balanced_separator(c, sep, balance=0.3)


class TestBalancedSeparator:
    def test_cycle_needs_two_edges(self):
        c = cycle(8)
        assert balanced_separator(c, 1) is None
        cover = balanced_separator(c, 2)
        assert cover is not None and len(cover.support) == 2

    def test_cover_is_actually_balanced(self):
        g = grid(3, 3)
        cover = balanced_separator(g, 2)
        assert cover is not None
        union = g.vertices_of(cover.support)
        assert is_balanced_separator(g, union)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            balanced_separator(cycle(4), 0)


class TestLowerBound:
    def test_cycle_bound_is_exact(self):
        assert ghw_balance_lower_bound(cycle(8)) == 2

    def test_acyclic_bound_is_1(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["b", "c"]})
        assert ghw_balance_lower_bound(h) == 1

    def test_kmax_cap(self):
        assert ghw_balance_lower_bound(clique(6), kmax=1) == 1


@given(hypergraphs(max_vertices=7, max_edges=6))
@settings(max_examples=25, deadline=None)
def test_balance_bound_is_sound(h: Hypergraph):
    """The balance lower bound never exceeds the true ghw."""
    ghw, _d = generalized_hypertree_width_exact(h)
    assert ghw_balance_lower_bound(h, kmax=ghw + 1) <= ghw
