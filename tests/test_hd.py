"""Tests for Check(HD,k) — the k-decomp search."""

import random

import pytest

from repro.algorithms import check_hd, hypertree_decomposition, hypertree_width
from repro.decomposition import is_hd
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    acyclic_hypergraph,
    clique,
    cycle,
    grid,
    path_hypergraph,
    triangle_cascade,
)
from repro.paper_artifacts import example_4_3_hypergraph

from .conftest import small_random_suite


class TestKnownWidths:
    def test_acyclic_hw_1(self):
        for seed in (1, 2, 3):
            h = acyclic_hypergraph(6, 3, rng=random.Random(seed))
            assert hypertree_width(h)[0] == 1

    def test_single_edge(self):
        h = Hypergraph({"e": ["a", "b", "c"]})
        assert hypertree_width(h)[0] == 1

    def test_path_hypergraph_hw_1(self):
        assert hypertree_width(path_hypergraph(5, 3, 1))[0] == 1

    def test_cycles_hw_2(self):
        for n in (4, 5, 6, 8):
            assert hypertree_width(cycle(n))[0] == 2

    def test_triangle_cascade_hw_2(self):
        assert hypertree_width(triangle_cascade(3))[0] == 2

    def test_clique_widths(self):
        """hw(K_n) = ceil(n/2) — bags are the whole clique (Lemma 2.8)."""
        assert hypertree_width(clique(4))[0] == 2
        assert hypertree_width(clique(5))[0] == 3
        assert hypertree_width(clique(6))[0] == 3

    def test_grid_hw(self):
        assert hypertree_width(grid(2, 2))[0] == 2
        assert hypertree_width(grid(3, 3))[0] == 2

    def test_example_4_3_hw_is_3(self):
        """The headline fact of Example 4.3: hw(H0) = 3 > 2 = ghw(H0)."""
        h0 = example_4_3_hypergraph()
        assert not check_hd(h0, 2)
        assert check_hd(h0, 3)


class TestWitnesses:
    def test_witness_is_validated_hd(self):
        h = cycle(6)
        d = hypertree_decomposition(h, 2)
        assert d is not None
        assert is_hd(h, d, width=2)

    def test_no_witness_below_width(self):
        assert hypertree_decomposition(cycle(6), 1) is None

    def test_disconnected_hypergraph(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["c", "d"]})
        assert hypertree_width(h)[0] == 1

    def test_duplicate_edge_contents(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["a", "b"], "e3": ["b", "c"]})
        assert hypertree_width(h)[0] == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            hypertree_decomposition(cycle(4), 0)

    def test_kmax_cap(self):
        with pytest.raises(ValueError, match="cap"):
            hypertree_width(clique(6), kmax=2)


class TestMonotonicity:
    def test_hw_monotone_in_k(self):
        """If Check(HD,k) accepts, Check(HD,k+1) accepts too."""
        for h in (cycle(5), grid(2, 3), clique(4)):
            k, _d = hypertree_width(h)
            assert check_hd(h, k + 1)

    def test_hw_of_vertex_induced_subhypergraph(self):
        """Lemma 2.7: hw is monotone under vertex-induced subhypergraphs."""
        h = grid(3, 3)
        k, _d = hypertree_width(h)
        sub = h.induced([v for v in sorted(h.vertices) if v != "v_1_1"])
        k_sub, _d2 = hypertree_width(sub)
        assert k_sub <= k


def test_hd_on_random_suite_matches_bruteforce_bound():
    """hw is between ghw and 3·ghw+1 [4] on the random suite, and every
    returned witness validates."""
    from repro.algorithms import generalized_hypertree_width_exact

    for h in small_random_suite(count=6, seed=11):
        hw, witness = hypertree_width(h)
        assert is_hd(h, witness, width=hw)
        ghw, _g = generalized_hypertree_width_exact(h)
        assert ghw <= hw <= 3 * ghw + 1
