"""Each generator delivers the structural properties it advertises."""

import random

import pytest

from repro.hypergraph import (
    degree,
    intersection_width,
    is_connected,
    multi_intersection_width,
)
from repro.hypergraph.generators import (
    acyclic_hypergraph,
    bounded_vc_unbounded_miwidth_family,
    clique,
    cycle,
    grid,
    hyperbench_like_suite,
    path_hypergraph,
    random_cq_hypergraph,
    random_csp_hypergraph,
    triangle_cascade,
    unbounded_support_family,
)


class TestBasicFamilies:
    def test_clique_counts(self):
        k5 = clique(5)
        assert k5.num_vertices == 5
        assert k5.num_edges == 10

    def test_clique_too_small(self):
        with pytest.raises(ValueError):
            clique(1)

    def test_cycle_counts(self):
        c = cycle(7)
        assert c.num_vertices == 7
        assert c.num_edges == 7
        assert all(len(e) == 2 for e in c.edges.values())

    def test_grid_counts(self):
        g = grid(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4
        assert is_connected(g)

    def test_path_hypergraph_overlap(self):
        p = path_hypergraph(4, 4, 2)
        assert intersection_width(p) == 2
        assert is_connected(p)

    def test_path_hypergraph_bad_overlap(self):
        with pytest.raises(ValueError):
            path_hypergraph(3, 3, 3)

    def test_triangle_cascade_connected(self):
        t = triangle_cascade(4)
        assert is_connected(t)
        assert t.num_edges == 12


class TestPaperFamilies:
    def test_unbounded_support_structure(self):
        h = unbounded_support_family(6)
        assert h.num_vertices == 7
        assert h.num_edges == 7
        assert intersection_width(h) == 1

    def test_unbounded_support_too_small(self):
        with pytest.raises(ValueError):
            unbounded_support_family(1)

    def test_vc_family_structure(self):
        h = bounded_vc_unbounded_miwidth_family(5)
        assert h.num_edges == 5
        assert all(len(e) == 4 for e in h.edges.values())
        assert multi_intersection_width(h, 2) == 3


class TestRandomFamilies:
    def test_acyclic_is_width_1(self):
        from repro.algorithms import hypertree_width

        h = acyclic_hypergraph(6, 3, rng=random.Random(5))
        assert hypertree_width(h)[0] == 1

    def test_random_cq_respects_max_shared(self):
        h = random_cq_hypergraph(
            10, max_arity=4, max_shared=2, rng=random.Random(2)
        )
        # Intersections may exceed max_shared when an atom shares with two
        # hosts that themselves overlap, but stay small.
        assert intersection_width(h) <= 4

    def test_random_cq_deterministic(self):
        h1 = random_cq_hypergraph(6, rng=random.Random(9))
        h2 = random_cq_hypergraph(6, rng=random.Random(9))
        assert h1 == h2

    def test_random_csp_shape(self):
        h = random_csp_hypergraph(8, 10, arity=2, rng=random.Random(1))
        assert all(len(e) == 2 for e in h.edges.values())
        assert h.num_edges == 10

    def test_random_csp_arity_check(self):
        with pytest.raises(ValueError):
            random_csp_hypergraph(2, 5, arity=3)

    def test_hyperbench_suite_composition(self):
        suite = hyperbench_like_suite(seed=1, n_cq=5, n_csp=2)
        assert len(suite) == 5 + 2 + 3
        assert all(h.num_vertices > 0 for h in suite)

    def test_hyperbench_suite_deterministic(self):
        s1 = hyperbench_like_suite(seed=4, n_cq=3, n_csp=1)
        s2 = hyperbench_like_suite(seed=4, n_cq=3, n_csp=1)
        assert all(a == b for a, b in zip(s1, s2))
