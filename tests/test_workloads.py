"""Workload generators: shapes, widths and engine agreement."""

import pytest

from repro.algorithms import check_ghd
from repro.cqcsp import (
    chain_query,
    cycle_query,
    evaluate,
    evaluate_naive,
    hub_relation,
    random_graph_relation,
    snowflake_query,
    star_query,
    zipf_relation,
)
from repro.hypergraph import is_alpha_acyclic


class TestQueryShapes:
    def test_star_is_acyclic(self):
        q = star_query(4)
        assert is_alpha_acyclic(q.hypergraph())
        assert len(q.atoms) == 4

    def test_chain_is_acyclic(self):
        q = chain_query(5)
        assert is_alpha_acyclic(q.hypergraph())
        assert q.head == ("x0", "x5")

    def test_boolean_chain(self):
        assert chain_query(3, boolean=True).is_boolean

    def test_cycle_has_ghw_2(self):
        h = cycle_query(5).hypergraph()
        assert not is_alpha_acyclic(h)
        assert check_ghd(h, 2)

    def test_snowflake_is_acyclic(self):
        q = snowflake_query(3, arm_length=2)
        assert is_alpha_acyclic(q.hypergraph())
        assert len(q.atoms) == 6

    @pytest.mark.parametrize(
        "factory", [lambda: star_query(0), lambda: chain_query(0),
                    lambda: cycle_query(2), lambda: snowflake_query(0)]
    )
    def test_bad_sizes(self, factory):
        with pytest.raises(ValueError):
            factory()


class TestDatabases:
    def test_random_graph_deterministic(self):
        a = random_graph_relation(10, 0.3, seed=1)
        b = random_graph_relation(10, 0.3, seed=1)
        assert a.tuples == b.tuples

    def test_hub_relation_shape(self):
        rel = hub_relation(3, 4)
        assert len(rel) >= 3 * 4 * 2

    def test_zipf_skew(self):
        rel = zipf_relation(300, 20, skew=1.5, seed=2)
        counts = {}
        for src, _dst in rel.tuples:
            counts[src] = counts.get(src, 0) + 1
        # The hottest key dominates a cold one.
        assert counts.get(0, 0) > counts.get(19, 0)

    def test_zipf_bad_values(self):
        with pytest.raises(ValueError):
            zipf_relation(10, 0)


class TestEngineAgreement:
    @pytest.mark.parametrize(
        "query", [star_query(3), chain_query(3), cycle_query(4),
                  snowflake_query(2, 2)]
    )
    def test_decomposed_matches_naive(self, query):
        db = {"r": random_graph_relation(9, 0.35, seed=7)}
        fast = evaluate(query, db)
        slow = evaluate_naive(query, db)
        assert fast.answers.tuples == slow.answers.tuples

    def test_hub_database_advantage(self):
        db = {"r": hub_relation(4, 8)}
        q = chain_query(5, boolean=True)
        fast = evaluate(q, db)
        slow = evaluate_naive(q, db)
        assert fast.answers.tuples == slow.answers.tuples
        assert fast.intermediate_tuples < slow.intermediate_tuples
