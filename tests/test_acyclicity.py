"""GYO reduction, α-acyclicity and join trees."""

import random

import pytest
from hypothesis import given, settings

from repro.algorithms import check_hd
from repro.decomposition import is_ghd
from repro.hypergraph import (
    Hypergraph,
    gyo_reduction,
    is_alpha_acyclic,
    join_tree,
)
from repro.hypergraph.generators import (
    acyclic_hypergraph,
    clique,
    cycle,
    grid,
    path_hypergraph,
)
from repro.paper_artifacts import example_4_3_hypergraph

from .strategies import hypergraphs


class TestAcyclicity:
    def test_single_edge_acyclic(self):
        assert is_alpha_acyclic(Hypergraph({"e": ["a", "b", "c"]}))

    def test_path_acyclic(self):
        assert is_alpha_acyclic(path_hypergraph(5, 3, 1))

    def test_cycle_cyclic(self):
        for n in (3, 4, 7):
            assert not is_alpha_acyclic(cycle(n))

    def test_grid_cyclic(self):
        assert not is_alpha_acyclic(grid(2, 2))

    def test_clique_cyclic_but_covered_clique_acyclic(self):
        """K3 as three binary edges is cyclic; adding the full triangle
        edge makes it α-acyclic — the classic α-acyclicity quirk."""
        k3 = clique(3)
        assert not is_alpha_acyclic(k3)
        fixed = k3.with_edges({"full": ["v1", "v2", "v3"]})
        assert is_alpha_acyclic(fixed)

    def test_example_4_3_cyclic(self):
        assert not is_alpha_acyclic(example_4_3_hypergraph())

    def test_disconnected_acyclic(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["c", "d"]})
        assert is_alpha_acyclic(h)

    def test_gyo_residue_on_cycle(self):
        residue, _abs = gyo_reduction(cycle(4))
        assert residue  # nothing reducible in a chordless cycle


class TestJoinTree:
    def test_join_tree_validates_as_width_1_ghd(self):
        for seed in range(5):
            h = acyclic_hypergraph(6, 3, rng=random.Random(seed))
            jt = join_tree(h)
            assert jt is not None
            assert is_ghd(h, jt, width=1)

    def test_join_tree_none_for_cyclic(self):
        assert join_tree(cycle(5)) is None

    def test_join_tree_bags_are_edges(self):
        h = path_hypergraph(4, 3, 1)
        jt = join_tree(h)
        assert {jt.bag(n) for n in jt.node_ids} == set(h.edges.values())

    def test_disconnected_join_tree(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["c", "d"]})
        jt = join_tree(h)
        assert jt is not None
        assert is_ghd(h, jt, width=1)


@given(hypergraphs())
@settings(max_examples=50, deadline=None)
def test_gyo_agrees_with_check_hd_1(h: Hypergraph):
    """α-acyclic ⟺ hw = 1 ⟺ ghw = 1 (the paper's footnote 1 notion)."""
    acyclic = is_alpha_acyclic(h)
    assert acyclic == check_hd(h, 1)
    if acyclic:
        jt = join_tree(h)
        assert jt is not None
        assert is_ghd(h, jt, width=1)
