"""The Section 6 approximation toolbox in action.

Shows, on K5 and the Example 4.3 hypergraph:

* exact fhw (exponential oracle),
* frac-decomp's k+ε approximation (Algorithm 3),
* the PTAAS binary search with its trace (Algorithm 4),
* the greedy integralization to a GHD with the VC-dimension bound
  on the loss (Theorem 6.23).

Run with::

    python examples/approximation_demo.py
"""

from repro import (
    example_4_3_hypergraph,
    fhw_approximation,
    frac_decomp,
    fractional_hypertree_width_exact,
    integralize,
    vc_dimension,
)
from repro.covers import dsw_gap_bound
from repro.hypergraph.generators import clique


def demo(h, label: str) -> None:
    print(f"--- {label} ---")
    fhw, fhd = fractional_hypertree_width_exact(h)
    print(f"exact fhw = {fhw:.4f}")

    approx = frac_decomp(h, fhw, eps=0.5, c=3)
    print(f"frac-decomp(k=fhw, ε=0.5): width {approx.width():.4f}")

    result = fhw_approximation(h, K=3.0, eps=0.5)
    print(
        f"PTAAS(K=3, ε=0.5): width {result.width:.4f} after "
        f"{result.iterations} probes"
    )
    for low, high, ok in result.trace:
        print(f"    bracket [{low:.3f}, {high:.3f}] -> "
              f"{'found' if ok else 'infeasible'}")

    ghd = integralize(h, fhd)
    print(
        f"greedy integralization: GHD width {ghd.width():.1f} "
        f"(ratio {ghd.width() / fhw:.3f}, "
        f"VC bound allows {dsw_gap_bound(h):.2f}; vc(H) = {vc_dimension(h)})"
    )
    print()


def main() -> None:
    demo(clique(5), "K5 (fhw = 2.5)")
    demo(example_4_3_hypergraph(), "Example 4.3 hypergraph (fhw = 2)")


if __name__ == "__main__":
    main()
