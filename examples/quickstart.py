"""Quickstart: hypergraphs, widths and decompositions in five minutes.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Hypergraph,
    fractional_hypertree_width,
    generalized_hypertree_width,
    hypertree_width,
    validate,
)
from repro.covers import fractional_edge_cover
from repro.hypergraph import components, degree, intersection_width


def main() -> None:
    # A cyclic conjunctive query's hypergraph: the classic triangle plus
    # a dangling path — vertices are query variables, edges are atoms.
    h = Hypergraph(
        {
            "r": ["x", "y"],
            "s": ["y", "z"],
            "t": ["z", "x"],
            "u": ["z", "w"],
            "v": ["w", "q"],
        },
        name="triangle-with-tail",
    )
    print(h)
    print("degree:", degree(h), "| intersection width:", intersection_width(h))
    print("components after removing z:", [sorted(c) for c in components(h, ["z"])])

    # The three widths of the paper, each with a certified witness.
    hw, hd = hypertree_width(h)
    ghw, ghd = generalized_hypertree_width(h)
    fhw, fhd = fractional_hypertree_width(h)
    print(f"\nhw  = {hw}   (hypertree width, Check(HD,k) of [27])")
    print(f"ghw = {ghw}   (generalized, via the Section 4 subedge method)")
    print(f"fhw = {fhw}   (fractional, exact oracle)")

    # Witnesses are real decomposition objects; validation is independent
    # of the search algorithms.
    validate(h, hd, kind="hd", width=hw)
    validate(h, ghd, kind="ghd", width=ghw)
    validate(h, fhd, kind="fhd", width=fhw + 1e-9)
    print("\nall three witnesses re-validated against Definitions 2.4-2.6")

    # Inspect the FHD: bags and fractional covers per node.
    print("\nFHD nodes:")
    for nid in fhd.preorder():
        bag = ",".join(sorted(fhd.bag(nid)))
        weights = {e: round(w, 3) for e, w in fhd.cover(nid).weights.items()}
        print(f"  {nid}: bag={{{bag}}}  γ={weights}")

    # Fractional edge covers directly (Section 2.2).
    cover = fractional_edge_cover(h)
    print(f"\nρ*(H) = {cover.weight:.3f} with support {sorted(cover.support)}")


if __name__ == "__main__":
    main()
