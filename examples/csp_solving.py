"""CSP solving via hypergraph decompositions (the other §1 application).

Models graph coloring and a small scheduling problem as CSPs, solves them
through the decomposition-guided engine, and cross-checks against plain
backtracking.

Run with::

    python examples/csp_solving.py
"""

from repro.cqcsp import CSP, Constraint, backtracking_solve
from repro.hypergraph import degree, intersection_width


def cycle_coloring(n: int, colors: int) -> CSP:
    domains = {f"v{i}": tuple(range(colors)) for i in range(n)}
    allowed = frozenset(
        (a, b) for a in range(colors) for b in range(colors) if a != b
    )
    constraints = [
        Constraint(f"ne{i}", (f"v{i}", f"v{(i + 1) % n}"), allowed)
        for i in range(n)
    ]
    return CSP(domains, constraints)


def meeting_scheduling() -> CSP:
    """Three meetings, four slots, overlap and precedence constraints."""
    slots = (1, 2, 3, 4)
    domains = {"standup": slots, "review": slots, "retro": slots}
    different = frozenset((a, b) for a in slots for b in slots if a != b)
    before = frozenset((a, b) for a in slots for b in slots if a < b)
    constraints = [
        Constraint("no_overlap_sr", ("standup", "review"), different),
        Constraint("no_overlap_rr", ("review", "retro"), different),
        Constraint("standup_first", ("standup", "review"), before),
        Constraint("review_before_retro", ("review", "retro"), before),
    ]
    return CSP(domains, constraints)


def report(name: str, csp: CSP) -> None:
    h = csp.hypergraph()
    print(f"{name}:")
    print(
        f"  constraint hypergraph: |V|={h.num_vertices} |E|={h.num_edges} "
        f"degree={degree(h)} iwidth={intersection_width(h)}"
    )
    solution = csp.solve()
    baseline = backtracking_solve(csp)
    print(f"  decomposition solver: {solution}")
    print(f"  backtracking agrees:  {(solution is None) == (baseline is None)}")
    if solution is not None:
        assert all(c.permits(solution) for c in csp.constraints)
        print("  solution verified against every constraint")
    print()


def main() -> None:
    report("C5 with 2 colors (unsatisfiable)", cycle_coloring(5, 2))
    report("C5 with 3 colors", cycle_coloring(5, 3))
    report("C8 with 2 colors", cycle_coloring(8, 2))
    report("meeting scheduling", meeting_scheduling())


if __name__ == "__main__":
    main()
