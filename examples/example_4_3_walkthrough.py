"""Walk through Section 4 on the paper's own running example.

Reproduces, step by step, what Examples 4.3-4.12 and Figures 4-7 do with
the hypergraph H₀ (an 8-cycle with two centre vertices):

1. hw(H₀) = 3 but ghw(H₀) = 2 — the gap that motivates Section 4;
2. the Figure 6(a) GHD is valid but not bag-maximal; maximalizing and
   pruning yields Figure 6(b) (Example 4.7);
3. Figure 6(b) violates the special condition at u0 (Example 4.4);
4. the ⋃⋂-tree of the critical path computes the subedge e2 ∩ B_u =
   {v3, v9} (Figure 7, Lemma 4.9);
5. adding that subedge repairs the SCV: an HD of H₀' of width 2 exists,
   which is exactly how Check(GHD,2) succeeds where Check(HD,2) fails.

Run with::

    python examples/example_4_3_walkthrough.py
"""

from repro import example_4_3_hypergraph, figure_6a_ghd
from repro.algorithms import (
    check_hd,
    critical_path,
    generalized_hypertree_decomposition,
    hypertree_width,
    union_intersection_tree,
)
from repro.decomposition import (
    is_bag_maximal,
    is_hd,
    make_bag_maximal,
    prune_redundant_nodes,
    repair_special_violations,
    special_condition_violations,
)


def main() -> None:
    h0 = example_4_3_hypergraph()
    print(f"H0 = {h0}: the Figure 4 hypergraph")
    for name, content in sorted(h0.edges.items()):
        print(f"  {name} = {{{', '.join(sorted(content))}}}")

    # Step 1: the width gap.
    hw, _hd = hypertree_width(h0)
    print(f"\n1. hw(H0) = {hw}, Check(HD,2) accepts: {check_hd(h0, 2)}")
    ghd = generalized_hypertree_decomposition(h0, 2)
    print(f"   Check(GHD,2) accepts: {ghd is not None} -> ghw(H0) = 2")

    # Step 2: bag-maximality (Example 4.7).
    fig6a = figure_6a_ghd()
    print(f"\n2. Figure 6(a): {len(fig6a)} nodes, bag-maximal: "
          f"{is_bag_maximal(h0, fig6a)}")
    fig6b = prune_redundant_nodes(h0, make_bag_maximal(h0, fig6a))
    print(f"   after maximalize+prune: {len(fig6b)} nodes, bag-maximal: "
          f"{is_bag_maximal(h0, fig6b)}  (= Figure 6(b))")

    # Step 3: the special condition violation (Example 4.4).
    scvs = special_condition_violations(h0, fig6b)
    for node, edge, offenders in scvs:
        print(f"\n3. SCV at {node}: edge {edge} has "
              f"{sorted(map(str, offenders))} below but outside the bag")

    # Step 4: the ⋃⋂-tree (Figure 7).
    node, edge, _offenders = scvs[0]
    path = critical_path(h0, fig6b, node, edge)
    covers = [frozenset(fig6b.cover(nid).support) for nid in path[1:]]
    tree = union_intersection_tree(h0, edge, covers)
    union = frozenset().union(*(l.intersection(h0) for l in tree.leaves()))
    print(f"\n4. critical path {path}; ⋃⋂-tree leaves "
          f"{[sorted(l.label) for l in tree.leaves()]} "
          f"-> e2 ∩ B_u = {sorted(map(str, union))}")

    # Step 5: repair and recover an HD of the augmented hypergraph.
    augmented, repaired = repair_special_violations(h0, fig6b)
    new_edges = sorted(set(augmented.edge_names) - set(h0.edge_names))
    print(f"\n5. added subedges {new_edges}")
    print(f"   repaired decomposition is an HD of H0' of width 2: "
          f"{is_hd(augmented, repaired, width=2)}")


if __name__ == "__main__":
    main()
