"""Decomposition-guided conjunctive query evaluation (the §1 motivation).

Evaluates a Boolean path query and a cyclic 4-cycle query over a random
graph database, comparing the GHD-guided Yannakakis engine against a
naive left-deep join, and prints the intermediate-result sizes that the
decomposition avoids.

Run with::

    python examples/cq_evaluation.py
"""

import random

from repro import parse_cq
from repro.cqcsp import Relation, evaluate, evaluate_naive


def random_graph(n: int, p: float, seed: int = 7) -> Relation:
    rng = random.Random(seed)
    rows = {
        (a, b)
        for a in range(n)
        for b in range(n)
        if a != b and rng.random() < p
    }
    return Relation.from_rows("r", ["a", "b"], rows)


def main() -> None:
    db = {"r": random_graph(14, 0.3)}
    print(f"database: |r| = {len(db['r'])} edges over 14 nodes\n")

    for text in (
        ":- r(x1, x2), r(x2, x3), r(x3, x4), r(x4, x5), r(x5, x6).",
        "q(a, c) :- r(a, b), r(b, c), r(c, d), r(d, a).",
    ):
        query = parse_cq(text)
        hypergraph = query.hypergraph()
        print(f"query: {query}")
        fast = evaluate(query, db)
        slow = evaluate_naive(query, db)
        assert fast.answers.tuples == slow.answers.tuples
        print(f"  variables: {len(hypergraph.vertices)}, atoms: {hypergraph.num_edges}")
        print(f"  answers: {len(fast.answers)}")
        print(f"  intermediate tuples, GHD-guided: {fast.intermediate_tuples:>8}")
        print(f"  intermediate tuples, naive join: {slow.intermediate_tuples:>8}")
        ratio = slow.intermediate_tuples / max(fast.intermediate_tuples, 1)
        print(f"  naive / decomposition cost ratio: {ratio:>8.2f}\n")


if __name__ == "__main__":
    main()
