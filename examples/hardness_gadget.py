"""Walk through the Theorem 3.2 NP-hardness reduction on a real formula.

Builds H(φ) for the paper's Example 3.3 formula, constructs the Table 1
width-2 GHD from a satisfying assignment, and prints the LP certificates
that make the converse direction concrete.

Run with::

    python examples/hardness_gadget.py
"""

from repro import CNF, build_reduction
from repro.hardness import paper_example_formula


def show(formula: CNF, label: str) -> None:
    print(f"--- {label}: clauses {formula.clauses} ---")
    reduction = build_reduction(formula)
    h = reduction.hypergraph
    print(f"reduction hypergraph: |V| = {h.num_vertices}, |E| = {h.num_edges}")
    print(f"control set |S| = {len(reduction.set_s)}, path positions = "
          f"{len(reduction.positions)}")

    ghd = reduction.verify_forward()
    if ghd is None:
        print("φ unsatisfiable -> no Table 1 GHD (as required)")
    else:
        print(
            f"φ satisfiable -> validated width-2 GHD with {len(ghd)} nodes "
            f"(the Figure 2 path)"
        )

    print("LP certificates of the 'only if' direction:")
    print("  Lemma 3.5 (complementary weights):", reduction.certify_lemma_3_5())
    print("  Lemma 3.6 (support confinement):  ", reduction.certify_lemma_3_6())
    for claim, ok in reduction.certify_claim_infeasibilities().items():
        print(f"  {claim}: {ok}")
    print(
        "  sat ⟺ all clause bags LP-coverable:",
        reduction.certify_equivalence(),
    )
    print()


def main() -> None:
    show(paper_example_formula(), "Example 3.3 (satisfiable)")
    show(CNF(((1, 1, 1), (-1, -1, -1))), "x ∧ ¬x (unsatisfiable)")


if __name__ == "__main__":
    main()
